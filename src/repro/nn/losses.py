"""Loss functions used by the three downstream tasks.

- graph classification: standard cross-entropy (paper Eq. 21);
- graph matching: hierarchical pairwise cross-entropy over the per-level
  similarity scores (paper Eq. 22-23);
- graph similarity learning: hierarchical MSE against relative GED
  (paper Eq. 24).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, absolute, exp, log, log_softmax, stack


def cross_entropy(logits: Tensor, label: int) -> Tensor:
    """Cross-entropy for a single example: ``-log softmax(logits)[label]``."""
    log_probs = log_softmax(logits, axis=-1)
    return -log_probs[int(label)]


def cross_entropy_batched(logits: Tensor, labels) -> Tensor:
    """Mean cross-entropy over a batch: ``logits`` (B, C), ``labels`` (B,).

    Equals the mean of :func:`cross_entropy` over the batch — the
    invariant the loop-vs-batched equivalence suite relies on.
    """
    labels = np.asarray(labels, dtype=np.intp)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError(
            f"expected (B, C) logits and (B,) labels, got {logits.shape} "
            f"and {labels.shape}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[(np.arange(labels.size), labels)]
    return -picked.mean()


def nll_loss(log_probs: Tensor, label: int) -> Tensor:
    """Negative log-likelihood for already-log-softmaxed scores."""
    return -log_probs[int(label)]


def mse_loss(prediction: Tensor, target: float | np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: float | np.ndarray) -> Tensor:
    """Mean absolute error against a constant target.

    The regression task's secondary objective/metric (docs/molecular.md);
    like :func:`mse_loss` it accepts a scalar target or a matching
    target vector and reduces by the mean.
    """
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return absolute(diff).mean()


def binary_cross_entropy(score: Tensor, label: int, eps: float = 1e-9) -> Tensor:
    """BCE for a probability ``score`` in (0, 1) and binary label."""
    score = score + Tensor(eps)
    if label:
        return -log(score)
    return -log(Tensor(1.0 + eps) - score)


def pairwise_matching_loss(
    distances: list[Tensor], label: int, scale: float = 0.5
) -> Tensor:
    """Hierarchical matching loss (paper Eq. 22-23).

    ``distances`` holds the Euclidean graph distances at each coarsening
    level k; each is converted to a similarity score
    ``s_k = exp(-scale * d_k)`` and a symmetric cross-entropy against the
    pair label is averaged over levels.
    """
    if not distances:
        raise ValueError("need at least one hierarchical distance")
    total: Tensor | None = None
    for dist in distances:
        score = exp(dist * (-scale))
        level_loss = binary_cross_entropy(score, label)
        total = level_loss if total is None else total + level_loss
    return total * (1.0 / len(distances))


def triplet_mse_loss(
    dist_anchor_left: list[Tensor],
    dist_anchor_right: list[Tensor],
    relative_ged: float,
) -> Tensor:
    """Hierarchical triplet loss (paper Eq. 24).

    For each level k the model's relative distance
    ``d(G1, G2)_k - d(G1, G3)_k`` is regressed onto the ground-truth
    relative GED ``g(G1, G2) - g(G1, G3)``.
    """
    if len(dist_anchor_left) != len(dist_anchor_right):
        raise ValueError("hierarchical distance lists must have equal length")
    diffs = [
        left - right for left, right in zip(dist_anchor_left, dist_anchor_right)
    ]
    errors = [
        (d - Tensor(float(relative_ged))) ** 2.0 for d in diffs
    ]
    return stack(errors).mean()
