"""Weight initialisers.

All initialisers take an explicit ``numpy.random.Generator`` so that
every experiment in the reproduction is exactly seeded.
"""

from __future__ import annotations

import numpy as np


def glorot_uniform(rng: np.random.Generator, fan_in: int, fan_out: int, shape=None):
    """Glorot/Xavier uniform initialisation (used by GAT and GCN)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(rng: np.random.Generator, fan_in: int, fan_out: int, shape=None):
    """Glorot/Xavier normal initialisation."""
    std = np.sqrt(2.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.normal(0.0, std, size=shape)


def uniform(rng: np.random.Generator, shape, low: float = -0.1, high: float = 0.1):
    """Plain uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def zeros(shape):
    """Zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
