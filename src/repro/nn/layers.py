"""Common layers: Linear, MLP, Dropout, LSTMCell, Bilinear.

``LSTMCell`` backs the Set2Set pooling baseline; ``Bilinear`` backs the
Neural Tensor Network block of the SimGNN comparator.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform, zeros
from repro.nn.module import Module, Parameter
from repro.tensor import Tensor, concat, dropout_mask, relu, sigmoid, tanh


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            glorot_uniform(rng, in_features, out_features), name="weight"
        )
        self.bias = Parameter(zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Stack of Linear layers with ReLU between hidden layers.

    ``activate_last`` applies ReLU after the final layer too (the paper's
    Eq. 20 uses ReLU on f1 but softmax on f2, applied by the loss).
    """

    def __init__(
        self,
        sizes: list[int],
        rng: np.random.Generator,
        activate_last: bool = False,
    ):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.activate_last = activate_last
        self.linears = [
            Linear(sizes[i], sizes[i + 1], rng) for i in range(len(sizes) - 1)
        ]
        for i, layer in enumerate(self.linears):
            setattr(self, f"linear{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.linears) - 1
        for i, layer in enumerate(self.linears):
            x = layer(x)
            if i < last or self.activate_last:
                x = relu(x)
        return x


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        self.rate = rate
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        mask = dropout_mask(x.shape, self.rate, self.rng)
        return x * Tensor(mask)


class LSTMCell(Module):
    """Single LSTM cell (input, forget, cell, output gates)."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        gate = 4 * hidden_size
        self.w_ih = Parameter(glorot_uniform(rng, input_size, gate), name="w_ih")
        self.w_hh = Parameter(glorot_uniform(rng, hidden_size, gate), name="w_hh")
        self.bias = Parameter(zeros(gate), name="bias")

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        h, c = state
        gates = x @ self.w_ih + h @ self.w_hh + self.bias
        hs = self.hidden_size
        i = sigmoid(gates[..., 0:hs])
        f = sigmoid(gates[..., hs : 2 * hs])
        g = tanh(gates[..., 2 * hs : 3 * hs])
        o = sigmoid(gates[..., 3 * hs : 4 * hs])
        c_next = f * c + i * g
        h_next = o * tanh(c_next)
        return h_next, c_next

    def initial_state(self, batch: int = 1) -> tuple[Tensor, Tensor]:
        shape = (batch, self.hidden_size) if batch > 1 else (self.hidden_size,)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))


class Bilinear(Module):
    """Neural-tensor-network interaction: ``f(a, b)_k = a^T W_k b``.

    Plus a linear term over the concatenation and a bias, following the
    NTN block used by SimGNN.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        super().__init__()
        self.out_features = out_features
        self.tensor_weight = Parameter(
            glorot_uniform(
                rng, in_features, in_features, shape=(out_features, in_features, in_features)
            ),
            name="tensor_weight",
        )
        self.linear_weight = Parameter(
            glorot_uniform(rng, 2 * in_features, out_features), name="linear_weight"
        )
        self.bias = Parameter(zeros(out_features), name="bias")

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        """Compute interaction scores for 1-D inputs ``a`` and ``b``."""
        # a: (F,), tensor_weight: (K, F, F), b: (F,) -> (K,)
        wa = self.tensor_weight @ b  # (K, F)
        bilinear = wa @ a  # (K,)
        linear = concat([a, b], axis=0) @ self.linear_weight
        return bilinear + linear + self.bias
