"""Neural-network substrate built on :mod:`repro.tensor`.

Provides the module system, common layers, initialisers, optimisers and
loss functions required by the GNN encoders, pooling operators and task
models of the HAP reproduction.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import Linear, MLP, Dropout, LSTMCell, Bilinear
from repro.nn.init import glorot_uniform, glorot_normal, zeros, uniform
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.serialization import save_module, load_module, module_fingerprint
from repro.nn.losses import (
    binary_cross_entropy,
    cross_entropy,
    cross_entropy_batched,
    mse_loss,
    nll_loss,
    pairwise_matching_loss,
    triplet_mse_loss,
)

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "MLP",
    "Dropout",
    "LSTMCell",
    "Bilinear",
    "glorot_uniform",
    "glorot_normal",
    "zeros",
    "uniform",
    "SGD",
    "Adam",
    "Optimizer",
    "save_module",
    "load_module",
    "module_fingerprint",
    "binary_cross_entropy",
    "cross_entropy",
    "cross_entropy_batched",
    "mse_loss",
    "nll_loss",
    "pairwise_matching_loss",
    "triplet_mse_loss",
]
