"""StructPool (Yuan & Ji, 2020): structured pooling via CRFs.

Cluster assignments are treated as a conditional random field whose
Gibbs energy couples each node's unary preference with the assignments
of its neighbours.  We run the standard mean-field approximation:

    Q^(0)  = softmax(U)
    Q^(t)  = softmax(U + Â Q^(t-1) W_pair)

where U = H W_unary are unary potentials, Â is the (row-normalised)
adjacency and W_pair is a learnable cluster-compatibility matrix.  The
fixed point minimises the (relaxed) Gibbs energy; coarsening then
follows the grouping recipe H' = Q^T H, A' = Q^T A Q.
"""

from __future__ import annotations

import numpy as np

from repro.nn.init import glorot_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter
from repro.pooling.base import Coarsening
from repro.tensor import Tensor, as_tensor, power, softmax


class StructPool(Coarsening):
    """Mean-field CRF assignment to ``num_clusters`` clusters."""

    def __init__(
        self,
        in_features: int,
        num_clusters: int,
        rng: np.random.Generator,
        iterations: int = 3,
    ):
        super().__init__()
        if num_clusters < 1:
            raise ValueError("need at least one cluster")
        if iterations < 0:
            raise ValueError("iterations must be >= 0")
        self.num_clusters = num_clusters
        self.iterations = iterations
        self.unary = Linear(in_features, num_clusters, rng)
        self.pairwise = Parameter(
            glorot_uniform(rng, num_clusters, num_clusters), name="pairwise"
        )

    def assignment(self, adjacency, h: Tensor) -> Tensor:
        """Mean-field marginals Q of shape (N, num_clusters)."""
        adj = as_tensor(adjacency)
        n = h.shape[0]
        row_sums = adj.sum(axis=1) + 1e-8
        adj_norm = adj * power(row_sums, -1.0).reshape(n, 1)
        unary = self.unary(h)
        q = softmax(unary, axis=1)
        for _ in range(self.iterations):
            pairwise_message = adj_norm @ q @ self.pairwise
            q = softmax(unary + pairwise_message, axis=1)
        return q

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        adj = as_tensor(adjacency)
        q = self.assignment(adjacency, h)
        h_coarse = q.T @ h
        adj_coarse = q.T @ adj @ q
        return adj_coarse, h_coarse
