"""Graph pooling operators.

Implements every baseline the paper compares against (Table 3), grouped
as in its related-work taxonomy:

- flat universal pooling: ``SumPool``, ``MeanPool``, ``MaxPool``,
  ``GCNConcat``, ``MeanAttPool`` (SimGNN-style), ``GatedAttPool``
  (GG-NN soft attention), ``Set2Set``;
- flat Top-K pooling: ``SortPooling``, ``AttPoolGlobal``,
  ``AttPoolLocal``, ``GPool``, ``SAGPool``;
- hierarchical group pooling: ``DiffPool``, ``ASAP``;
- unsupervised-flavoured: ``StructPool`` (CRF mean-field), and
  ``MinCutPool`` as an extension.

Two interfaces (see :mod:`repro.pooling.base`): a *readout* maps
``(A, H)`` to a graph-level vector; a *coarsening* maps ``(A, H)`` to a
smaller ``(A', H')`` and is what HAP's ablation (Table 5) swaps in for
the graph coarsening module.
"""

from repro.pooling.base import Coarsening, Readout, coarsening_readout
from repro.pooling.universal import (
    GCNConcat,
    GatedAttPool,
    MaxPool,
    MeanAttPool,
    MeanAttPoolCoarsening,
    MeanPool,
    MeanPoolCoarsening,
    SumPool,
)
from repro.pooling.set2set import Set2Set
from repro.pooling.sort import SortPooling
from repro.pooling.topk import AttPoolGlobal, AttPoolLocal, GPool, SAGPool, TopKCoarsening
from repro.pooling.diffpool import DiffPool
from repro.pooling.asap import ASAP
from repro.pooling.structpool import StructPool
from repro.pooling.mincut import MinCutPool
from repro.pooling.spectral import SpectralPool, normalized_laplacian, spectral_embedding

__all__ = [
    "Coarsening",
    "Readout",
    "coarsening_readout",
    "SumPool",
    "MeanPool",
    "MaxPool",
    "GCNConcat",
    "MeanAttPool",
    "GatedAttPool",
    "MeanPoolCoarsening",
    "MeanAttPoolCoarsening",
    "Set2Set",
    "SortPooling",
    "AttPoolGlobal",
    "AttPoolLocal",
    "GPool",
    "SAGPool",
    "TopKCoarsening",
    "DiffPool",
    "ASAP",
    "StructPool",
    "MinCutPool",
    "SpectralPool",
    "normalized_laplacian",
    "spectral_embedding",
]
