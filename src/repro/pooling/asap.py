"""ASAP pooling (Ranjan et al., 2020), dense re-implementation.

Every node seeds a cluster over its 1-hop ego network; a master
attention (the cluster's max-pooled content attending over members)
produces member weights; cluster fitness is scored with a LEConv-style
local-extremum convolution; the top ``ceil(ratio * N)`` clusters
survive and the coarsened adjacency is ``S^T A S`` restricted to them.

The paper's criticism — that ASAP still groups within a fixed 1-hop
receptive field — is visible directly in ``member_mask``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.init import glorot_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter
from repro.pooling.base import Coarsening
from repro.tensor import (
    Tensor,
    as_tensor,
    gather_rows,
    leaky_relu,
    max_along,
    sigmoid,
    softmax,
    where,
)


class ASAP(Coarsening):
    """Adaptive Structure Aware Pooling."""

    def __init__(self, in_features: int, rng: np.random.Generator, ratio: float = 0.5):
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.transform = Linear(in_features, in_features, rng, bias=False)
        self.att_master = Parameter(
            glorot_uniform(rng, in_features, 1, shape=(in_features,)),
            name="att_master",
        )
        self.att_member = Parameter(
            glorot_uniform(rng, in_features, 1, shape=(in_features,)),
            name="att_member",
        )
        # LEConv-style fitness scoring parameters.
        self.fit_self = Linear(in_features, 1, rng)
        self.fit_neigh = Linear(in_features, 1, rng)

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        adj = as_tensor(adjacency)
        n, f = h.shape
        member_mask = (np.asarray(adj.data) != 0) | np.eye(n, dtype=bool)

        transformed = self.transform(h)  # (N, F)
        # Master of cluster i: feature-wise max over its ego network.
        broadcast = transformed.reshape(1, n, f)
        neg_inf = Tensor(np.full((1, 1, 1), -1e9))
        masked = where(member_mask[:, :, None], broadcast, neg_inf)
        masters = max_along(masked, axis=1)  # (N, F)

        # Master-attention weights over members.
        logits = leaky_relu(
            (masters @ self.att_master).reshape(n, 1)
            + (transformed @ self.att_member).reshape(1, n)
        )
        masked_logits = where(member_mask, logits, Tensor(np.full((n, n), -1e9)))
        alpha = softmax(masked_logits, axis=1)  # (N clusters, N members)
        cluster_h = alpha @ transformed  # (N, F)

        # LEConv fitness: local extremum against neighbouring clusters.
        degree = member_mask.sum(axis=1).astype(np.float64)
        neigh_sum = adj @ self.fit_neigh(cluster_h)
        fitness = sigmoid(
            self.fit_self(cluster_h) * Tensor(degree.reshape(n, 1)) - neigh_sum
        ).reshape(n)

        k = max(1, min(n, math.ceil(self.ratio * n)))
        kept = np.sort(np.argsort(-fitness.data, kind="stable")[:k])
        h_coarse = gather_rows(cluster_h, kept) * gather_rows(
            fitness.reshape(n, 1), kept
        )
        # A' = S^T A S with S = alpha^T restricted to surviving clusters.
        assignment = alpha.T  # (N members, N clusters)
        kept_assignment = gather_rows(assignment.T, kept).T  # (N, k)
        adj_coarse = kept_assignment.T @ adj @ kept_assignment
        return adj_coarse, h_coarse
