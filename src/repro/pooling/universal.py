"""Flat universal pooling baselines.

- ``SumPool`` / ``MeanPool`` / ``MaxPool``: element-wise aggregators
  (Xu et al. show sum is the most expressive of the three).
- ``GCNConcat``: concatenation of per-layer GCN node representations,
  mean-aggregated over nodes (the paper's "GCN-concat" baseline).
- ``MeanAttPool``: SimGNN-style attention against the mean graph
  context.
- ``GatedAttPool``: GG-NN soft attention (a gate network decides each
  node's relevance).
- ``MeanPoolCoarsening`` / ``MeanAttPoolCoarsening``: the same
  aggregators cast as N -> 1 coarsening operators for the Table 5
  ablation (HAP-MeanPool, HAP-MeanAttPool).
"""

from __future__ import annotations

import numpy as np

from repro.gnn.encoder import GNNEncoder
from repro.nn.init import glorot_uniform
from repro.nn.layers import Linear
from repro.nn.module import Parameter
from repro.pooling.base import Coarsening, Readout
from repro.tensor import Tensor, concat, sigmoid, tanh


class SumPool(Readout):
    """Element-wise sum over node features."""

    def __init__(self, in_features: int):
        super().__init__()
        self.out_features = in_features

    def readout(self, adjacency, h: Tensor) -> Tensor:
        return h.sum(axis=0)


class MeanPool(Readout):
    """Element-wise mean over node features."""

    def __init__(self, in_features: int):
        super().__init__()
        self.out_features = in_features

    def readout(self, adjacency, h: Tensor) -> Tensor:
        return h.mean(axis=0)


class MaxPool(Readout):
    """Element-wise max over node features."""

    def __init__(self, in_features: int):
        super().__init__()
        self.out_features = in_features

    def readout(self, adjacency, h: Tensor) -> Tensor:
        return h.max(axis=0)


class GCNConcat(Readout):
    """Concatenate every GCN layer's node output, then mean over nodes."""

    def __init__(self, encoder: GNNEncoder):
        super().__init__()
        self.encoder = encoder
        self.out_features = sum(layer.out_features for layer in encoder.layers)

    def readout(self, adjacency, h: Tensor) -> Tensor:
        outputs = self.encoder.layer_outputs(adjacency, h)
        return concat(outputs, axis=1).mean(axis=0)


class MeanAttPool(Readout):
    """SimGNN attention pooling: nodes attend to the mean graph context.

    ``c = mean(H) W``; ``a_i = sigmoid(h_i . c)``; ``h_G = sum_i a_i h_i``.
    """

    def __init__(self, in_features: int, rng: np.random.Generator):
        super().__init__()
        self.out_features = in_features
        self.weight = Parameter(
            glorot_uniform(rng, in_features, in_features), name="weight"
        )

    def attention(self, h: Tensor) -> Tensor:
        context = h.mean(axis=0) @ self.weight  # (F,)
        return sigmoid(h @ context)  # (N,)

    def readout(self, adjacency, h: Tensor) -> Tensor:
        scores = self.attention(h)
        n = h.shape[0]
        return (scores.reshape(1, n) @ h).reshape(h.shape[1])


class GatedAttPool(Readout):
    """GG-NN soft attention readout: ``sum_i sigmoid(gate(h_i)) * proj(h_i)``."""

    def __init__(self, in_features: int, rng: np.random.Generator):
        super().__init__()
        self.out_features = in_features
        self.gate = Linear(in_features, 1, rng)
        self.project = Linear(in_features, in_features, rng)

    def readout(self, adjacency, h: Tensor) -> Tensor:
        n = h.shape[0]
        gates = sigmoid(self.gate(h)).reshape(1, n)
        projected = tanh(self.project(h))
        return (gates @ projected).reshape(self.out_features)


class MeanPoolCoarsening(Coarsening):
    """N -> 1 coarsening by mean aggregation (HAP-MeanPool ablation)."""

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        h_coarse = h.mean(axis=0).reshape(1, h.shape[1])
        adj_coarse = Tensor(np.zeros((1, 1)))
        return adj_coarse, h_coarse


class MeanAttPoolCoarsening(Coarsening):
    """N -> 1 coarsening by mean-context attention (HAP-MeanAttPool)."""

    def __init__(self, in_features: int, rng: np.random.Generator):
        super().__init__()
        self.readout = MeanAttPool(in_features, rng)

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        h_coarse = self.readout(adjacency, h).reshape(1, h.shape[1])
        adj_coarse = Tensor(np.zeros((1, 1)))
        return adj_coarse, h_coarse
