"""Pooling interfaces shared by every operator.

``Readout`` collapses a graph to a single vector (flat pooling);
``Coarsening`` maps a graph to a smaller graph (hierarchical pooling).
Any coarsening doubles as a readout by coarsening to its target size
and mean-aggregating the surviving clusters.

Uniform contract (enforced here, conformance-tested by
``tests/test_pooling_contract.py``):

- Inputs: ``adjacency`` is ``None`` (allowed for operators that ignore
  structure), a numpy array, or a ``Tensor`` — always 2-D square
  ``(N, N)`` matching ``h``'s ``(N, F)`` rows.  ``h`` may be a numpy
  array or ``Tensor``; it is coerced to ``Tensor``.
- ``Readout.__call__(adjacency, h) -> Tensor`` of shape
  ``(out_features,)``.
- ``Coarsening.__call__(adjacency, h) -> (A', H')`` with 2-D ``A'``
  (square) and ``H'``.  Operators with a padded-batch implementation
  set ``supports_padded = True`` and implement ``coarsen_padded``;
  ``__call__(adjacency, h, mask)`` on 3-D input then returns
  ``(A', H', mask')``.  The rest raise ``NotImplementedError`` on 3-D
  input instead of silently mis-broadcasting.

Subclasses implement the ``readout`` / ``coarsen`` hooks; ``forward``
is the validating template and should not be overridden.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import Tensor, as_tensor


def prepare_graph_inputs(adjacency, h) -> tuple[object, Tensor]:
    """Validate and coerce one operator input pair.

    ``h`` becomes a 2-D ``Tensor``; ``adjacency`` passes through
    unchanged (``None`` stays ``None`` — structure-free operators like
    ``SumPool`` accept it) after a shape check against ``h``.
    """
    h = as_tensor(h)
    if h.ndim != 2:
        raise ValueError(f"expected (N, F) node features, got shape {h.shape}")
    if adjacency is not None:
        shape = adjacency.shape if isinstance(adjacency, Tensor) else np.shape(adjacency)
        if len(shape) != 2 or shape[0] != shape[1]:
            raise ValueError(f"expected square (N, N) adjacency, got shape {shape}")
        if shape[0] != h.shape[0]:
            raise ValueError(
                f"adjacency is for {shape[0]} nodes but features have {h.shape[0]} rows"
            )
    return adjacency, h


class Readout(Module):
    """Maps ``(adjacency, node_features)`` to a 1-D graph embedding.

    Subclasses implement :meth:`readout`; the base ``forward`` validates
    the contract on the way in (2-D features, square adjacency or
    ``None``) and out (a 1-D vector of ``out_features``).
    """

    #: output embedding dimension; set by subclasses.
    out_features: int

    def forward(self, adjacency, h: Tensor) -> Tensor:
        h = as_tensor(h)
        if h.ndim == 3:
            raise NotImplementedError(
                f"{type(self).__name__} has no padded-batch path; "
                "run it through the per-graph loop instead"
            )
        adjacency, h = prepare_graph_inputs(adjacency, h)
        out = self.readout(adjacency, h)
        if out.ndim != 1 or out.shape[0] != self.out_features:
            raise AssertionError(
                f"{type(self).__name__}.readout returned shape {out.shape}, "
                f"expected ({self.out_features},)"
            )
        return out

    def readout(self, adjacency, h: Tensor) -> Tensor:
        raise NotImplementedError


class Coarsening(Module):
    """Maps ``(adjacency, node_features)`` to a coarser ``(A', H')``.

    Subclasses implement :meth:`coarsen` and document how their output
    size is determined (a fixed cluster count, a keep-ratio, or 1 for
    global pools).  Operators with a vectorised padded-batch
    implementation set ``supports_padded = True`` and implement
    :meth:`coarsen_padded`.
    """

    #: whether :meth:`coarsen_padded` exists (3-D dispatch target).
    supports_padded: bool = False

    #: whether the operator conditions on per-edge attributes; operators
    #: without the hook reject ``edge_attr`` loudly rather than dropping
    #: bond types on the floor (docs/molecular.md).
    supports_edge_attr: bool = False

    def forward(self, adjacency, h: Tensor, mask=None, edge_attr=None):
        h = as_tensor(h)
        if edge_attr is not None and not self.supports_edge_attr:
            raise NotImplementedError(
                f"{type(self).__name__} does not condition on edge_attr; "
                "use HAP coarsening built with edge_features > 0"
            )
        if h.ndim == 3:
            if not self.supports_padded:
                raise NotImplementedError(
                    f"{type(self).__name__} has no batched path; "
                    "run it through the per-graph loop instead"
                )
            if edge_attr is not None:
                return self.coarsen_padded(adjacency, h, mask, edge_attr=edge_attr)
            return self.coarsen_padded(adjacency, h, mask)
        adjacency, h = prepare_graph_inputs(adjacency, h)
        if edge_attr is not None:
            adj_coarse, h_coarse = self.coarsen(adjacency, h, edge_attr=edge_attr)
        else:
            adj_coarse, h_coarse = self.coarsen(adjacency, h)
        if h_coarse.ndim != 2:
            raise AssertionError(
                f"{type(self).__name__}.coarsen returned {h_coarse.ndim}-D "
                "features, expected (N', F)"
            )
        k = h_coarse.shape[0]
        if adj_coarse.ndim != 2 or adj_coarse.shape != (k, k):
            raise AssertionError(
                f"{type(self).__name__}.coarsen returned adjacency shape "
                f"{adj_coarse.shape} for {k} clusters, expected ({k}, {k})"
            )
        return adj_coarse, h_coarse

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        raise NotImplementedError

    def coarsen_padded(self, adjacency, h: Tensor, mask):
        """Padded-batch coarsening ``(A, H, mask) -> (A', H', mask')``.

        Only meaningful when ``supports_padded`` is true.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batched path; "
            "run it through the per-graph loop instead"
        )

    def auxiliary_loss(self) -> Tensor | None:
        """Regularisation term recorded by the last ``coarsen`` call.

        DiffPool's link-prediction/entropy losses and MinCutPool's
        cut/orthogonality losses are exposed through this hook; operators
        without auxiliary objectives return None.
        """
        return None


def coarsening_readout(coarsening: Coarsening, adjacency, h: Tensor) -> Tensor:
    """Use a coarsening operator as a readout: coarsen then mean-pool."""
    _, h_coarse = coarsening(adjacency, h)
    return h_coarse.mean(axis=0)
