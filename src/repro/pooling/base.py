"""Pooling interfaces shared by every operator.

``Readout`` collapses a graph to a single vector (flat pooling);
``Coarsening`` maps a graph to a smaller graph (hierarchical pooling).
Any coarsening doubles as a readout by coarsening to its target size
and mean-aggregating the surviving clusters.
"""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import Tensor


class Readout(Module):
    """Maps ``(adjacency, node_features)`` to a 1-D graph embedding."""

    #: output embedding dimension; set by subclasses.
    out_features: int

    def forward(self, adjacency, h: Tensor) -> Tensor:
        raise NotImplementedError


class Coarsening(Module):
    """Maps ``(adjacency, node_features)`` to a coarser ``(A', H')``.

    Subclasses document how their output size is determined (a fixed
    cluster count, a keep-ratio, or 1 for global pools).
    """

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        raise NotImplementedError

    def forward(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        return self.coarsen(adjacency, h)

    def auxiliary_loss(self) -> Tensor | None:
        """Regularisation term recorded by the last ``coarsen`` call.

        DiffPool's link-prediction/entropy losses and MinCutPool's
        cut/orthogonality losses are exposed through this hook; operators
        without auxiliary objectives return None.
        """
        return None


def coarsening_readout(coarsening: Coarsening, adjacency, h: Tensor) -> Tensor:
    """Use a coarsening operator as a readout: coarsen then mean-pool."""
    _, h_coarse = coarsening.coarsen(adjacency, h)
    return h_coarse.mean(axis=0)
