"""SortPooling (Zhang et al., 2018).

Treats the last feature channel as a continuous WL colour, sorts nodes
by it in descending order, keeps the top ``k`` (zero-padding smaller
graphs) and flattens the result into a fixed-size vector.  The sort is
a constant re-indexing, so gradients flow to the selected nodes.
"""

from __future__ import annotations

import numpy as np

from repro.pooling.base import Readout
from repro.tensor import Tensor, concat, gather_rows


class SortPooling(Readout):
    """Sort nodes by their last feature channel and keep the top k."""

    def __init__(self, in_features: int, k: int):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.in_features = in_features
        self.out_features = k * in_features

    def readout(self, adjacency, h: Tensor) -> Tensor:
        n, f = h.shape
        order = np.argsort(-h.data[:, -1], kind="stable")[: self.k]
        selected = gather_rows(h, order)
        kept = min(self.k, n)
        flat = selected.reshape(kept * f)
        if kept < self.k:
            flat = concat([flat, Tensor(np.zeros((self.k - kept) * f))], axis=0)
        return flat
