"""MinCutPool (Bianchi et al., 2020) — extension beyond the paper's table.

A continuous relaxation of normalised minCUT: cluster assignments
``S = softmax(MLP(H))`` are regularised by

    L_cut   = -Tr(S^T A S) / Tr(S^T D S)
    L_ortho = || S^T S / ||S^T S||_F  -  I / sqrt(k) ||_F

exposed via :meth:`auxiliary_loss`.  Coarsening follows the grouping
recipe with the usual diagonal reset of A'.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear
from repro.pooling.base import Coarsening
from repro.tensor import Tensor, as_tensor, softmax, sqrt


def _trace(matrix: Tensor) -> Tensor:
    n = matrix.shape[0]
    idx = np.arange(n)
    return matrix[idx, idx].sum()


class MinCutPool(Coarsening):
    """Spectral-clustering-flavoured pooling to ``num_clusters`` clusters."""

    def __init__(self, in_features: int, num_clusters: int, rng: np.random.Generator):
        super().__init__()
        if num_clusters < 1:
            raise ValueError("need at least one cluster")
        self.num_clusters = num_clusters
        self.assign = Linear(in_features, num_clusters, rng)
        self._aux: Tensor | None = None

    def assignment(self, adjacency, h: Tensor) -> Tensor:
        return softmax(self.assign(h), axis=1)

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        adj = as_tensor(adjacency)
        n = h.shape[0]
        k = self.num_clusters
        s = self.assignment(adjacency, h)
        degree = Tensor(np.diag(np.asarray(adj.data).sum(axis=1)))

        cut_num = _trace(s.T @ adj @ s)
        cut_den = _trace(s.T @ degree @ s) + 1e-9
        cut_loss = -(cut_num / cut_den)

        sts = s.T @ s
        fro = sqrt((sts * sts).sum() + 1e-12)
        identity = Tensor(np.eye(k) / np.sqrt(k))
        residual = sts / fro - identity
        ortho_loss = sqrt((residual * residual).sum() + 1e-12)
        self._aux = cut_loss + ortho_loss

        h_coarse = s.T @ h
        adj_coarse = s.T @ adj @ s
        # Zero the coarsened diagonal as in the original formulation.
        mask = 1.0 - np.eye(k)
        adj_coarse = adj_coarse * Tensor(mask)
        return adj_coarse, h_coarse

    def auxiliary_loss(self) -> Tensor | None:
        return self._aux
