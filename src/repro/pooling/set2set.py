"""Set2Set pooling (Vinyals et al., 2015).

An LSTM produces a query vector, nodes are soft-attended against it,
and the attention readout is fed back into the LSTM for ``steps``
iterations.  The output is the concatenation of the final query and the
final readout (dimension ``2 * in_features``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import LSTMCell
from repro.pooling.base import Readout
from repro.tensor import Tensor, concat, softmax


class Set2Set(Readout):
    """Order-invariant set pooling with iterative content-based attention."""

    def __init__(self, in_features: int, rng: np.random.Generator, steps: int = 3):
        super().__init__()
        if steps < 1:
            raise ValueError("set2set needs at least one processing step")
        self.steps = steps
        self.in_features = in_features
        self.out_features = 2 * in_features
        self.lstm = LSTMCell(2 * in_features, in_features, rng)

    def readout(self, adjacency, h: Tensor) -> Tensor:
        n, f = h.shape
        q_star = Tensor(np.zeros(2 * f))
        state = self.lstm.initial_state()
        readout = Tensor(np.zeros(f))
        query = state[0]
        for _ in range(self.steps):
            query, cell = self.lstm(q_star, state)
            state = (query, cell)
            energies = h @ query  # (N,)
            attention = softmax(energies, axis=0)
            readout = (attention.reshape(1, n) @ h).reshape(f)
            q_star = concat([query, readout], axis=0)
        return q_star
