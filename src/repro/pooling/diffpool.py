"""DiffPool (Ying et al., 2018): differentiable hierarchical grouping.

An assignment GNN produces a dense soft-assignment matrix
``S = softmax(GNN_assign(A, H))`` over a fixed number of clusters; the
coarsened graph is ``H' = S^T Z`` and ``A' = S^T A S``.  The auxiliary
link-prediction loss ``||A - S S^T||_F`` and the assignment-entropy
regulariser from the original paper are exposed through
:meth:`auxiliary_loss`.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.layers import GCNLayer
from repro.pooling.base import Coarsening
from repro.tensor import Tensor, as_tensor, log, softmax


class DiffPool(Coarsening):
    """Soft cluster assignment to ``num_clusters`` clusters."""

    def __init__(
        self,
        in_features: int,
        num_clusters: int,
        rng: np.random.Generator,
        use_embed_gnn: bool = True,
    ):
        super().__init__()
        if num_clusters < 1:
            raise ValueError("need at least one cluster")
        self.num_clusters = num_clusters
        self.assign_gnn = GCNLayer(in_features, num_clusters, rng, activation="none")
        self.embed_gnn = (
            GCNLayer(in_features, in_features, rng) if use_embed_gnn else None
        )
        self._aux: Tensor | None = None

    def assignment(self, adjacency, h: Tensor) -> Tensor:
        """Soft assignment matrix S of shape (N, num_clusters)."""
        return softmax(self.assign_gnn(adjacency, h), axis=1)

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        adj = as_tensor(adjacency)
        s = self.assignment(adjacency, h)
        z = self.embed_gnn(adjacency, h) if self.embed_gnn is not None else h
        h_coarse = s.T @ z
        adj_coarse = s.T @ adj @ s
        # Auxiliary objectives from the original paper.
        link_residual = adj - s @ s.T
        link_loss = (link_residual * link_residual).mean()
        entropy = -(s * log(s + 1e-12)).sum(axis=1).mean()
        self._aux = link_loss + entropy * 0.1
        return adj_coarse, h_coarse

    def auxiliary_loss(self) -> Tensor | None:
        return self._aux
