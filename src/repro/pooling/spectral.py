"""Spectral pooling: cluster assignment from Laplacian eigenvectors.

A classical, training-free grouping baseline beyond the paper's table:
nodes are embedded with the first ``num_clusters`` eigenvectors of the
symmetric normalised Laplacian and soft-assigned to clusters by a
(learnable) linear map over that spectral embedding.  Grouping then
follows the usual recipe H' = S^T H, A' = S^T A S.

The spectral decomposition itself is treated as a constant (no gradient
flows through the eigensolver), matching how spectral methods are used
in practice.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Linear
from repro.pooling.base import Coarsening
from repro.tensor import Tensor, as_tensor, concat, softmax


def normalized_laplacian(adjacency: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Symmetric normalised Laplacian ``I - D^{-1/2} A D^{-1/2}``."""
    adj = np.asarray(adjacency, dtype=np.float64)
    degree = adj.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, eps))
    normalized = adj * inv_sqrt[:, None] * inv_sqrt[None, :]
    return np.eye(adj.shape[0]) - normalized


def spectral_embedding(adjacency: np.ndarray, dim: int) -> np.ndarray:
    """First ``dim`` non-trivial Laplacian eigenvectors (zero-padded)."""
    laplacian = normalized_laplacian(adjacency)
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    order = np.argsort(eigenvalues)
    # Skip the trivial constant eigenvector when possible.
    start = 1 if adjacency.shape[0] > 1 else 0
    selected = eigenvectors[:, order[start : start + dim]]
    if selected.shape[1] < dim:
        pad = np.zeros((adjacency.shape[0], dim - selected.shape[1]))
        selected = np.hstack([selected, pad])
    # Fix sign ambiguity: make each eigenvector's largest-magnitude
    # entry positive so the embedding is deterministic.
    for j in range(selected.shape[1]):
        column = selected[:, j]
        peak = np.argmax(np.abs(column))
        if column[peak] < 0:
            selected[:, j] = -column
    return selected


class SpectralPool(Coarsening):
    """Coarsening by learnable assignment over the spectral embedding."""

    def __init__(self, in_features: int, num_clusters: int, rng: np.random.Generator):
        super().__init__()
        if num_clusters < 1:
            raise ValueError("need at least one cluster")
        self.num_clusters = num_clusters
        # Assignment sees [features || spectral coordinates].
        self.assign = Linear(in_features + num_clusters, num_clusters, rng)

    def assignment(self, adjacency, h: Tensor) -> Tensor:
        adj_data = adjacency.data if isinstance(adjacency, Tensor) else adjacency
        coords = Tensor(spectral_embedding(np.asarray(adj_data), self.num_clusters))
        joint = concat([as_tensor(h), coords], axis=1)
        return softmax(self.assign(joint), axis=1)

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        adj = as_tensor(adjacency)
        s = self.assignment(adjacency, h)
        return s.T @ adj @ s, s.T @ as_tensor(h)
