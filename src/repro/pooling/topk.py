"""Top-K pooling family: gPool, SAGPool, AttPool (global & local).

Each method scores nodes, keeps the ``ceil(ratio * N)`` best and gates
the surviving features with their (squashed) scores so the scoring
parameters receive gradients.  The coarsened adjacency is the induced
subgraph on the survivors — exactly the behaviour the paper criticises
(dropped nodes lose their information and survivors may disconnect),
which our tests verify.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gnn.layers import GCNLayer
from repro.nn.init import glorot_uniform
from repro.nn.module import Parameter
from repro.pooling.base import Coarsening
from repro.tensor import Tensor, gather_rows, sigmoid, softmax, sqrt, tanh


def _keep_count(n: int, ratio: float) -> int:
    return max(1, min(n, math.ceil(ratio * n)))


def _induced_adjacency(adjacency, kept: np.ndarray) -> Tensor:
    adj_data = adjacency.data if isinstance(adjacency, Tensor) else adjacency
    if isinstance(adjacency, Tensor) and adjacency.requires_grad:
        rows = gather_rows(adjacency, kept)
        return gather_rows(rows.T, kept).T
    return Tensor(np.asarray(adj_data)[np.ix_(kept, kept)])


class TopKCoarsening(Coarsening):
    """Shared select-and-gate machinery for the Top-K family.

    Subclasses implement :meth:`scores` returning one logit per node.
    ``gate`` chooses the squashing applied to survivors' scores.
    """

    def __init__(self, ratio: float = 0.5, gate: str = "tanh"):
        super().__init__()
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if gate not in ("tanh", "sigmoid", "softmax"):
            raise ValueError(f"unknown gate {gate!r}")
        self.ratio = ratio
        self.gate = gate

    def scores(self, adjacency, h: Tensor) -> Tensor:
        raise NotImplementedError

    def coarsen(self, adjacency, h: Tensor) -> tuple[Tensor, Tensor]:
        n = h.shape[0]
        raw = self.scores(adjacency, h)  # (N,)
        k = _keep_count(n, self.ratio)
        kept = np.sort(np.argsort(-raw.data, kind="stable")[:k])
        if self.gate == "tanh":
            gates = tanh(raw)
        elif self.gate == "sigmoid":
            gates = sigmoid(raw)
        else:
            gates = softmax(raw, axis=0)
        h_kept = gather_rows(h, kept) * gather_rows(
            gates.reshape(n, 1), kept
        )
        return _induced_adjacency(adjacency, kept), h_kept


class GPool(TopKCoarsening):
    """gPool / Graph U-Nets (Gao & Ji 2019).

    Node score is the scalar projection of its features onto a trainable
    vector: ``y = H p / ||p||``.
    """

    def __init__(self, in_features: int, rng: np.random.Generator, ratio: float = 0.5):
        super().__init__(ratio=ratio, gate="tanh")
        self.projection = Parameter(
            glorot_uniform(rng, in_features, 1, shape=(in_features,)),
            name="projection",
        )

    def scores(self, adjacency, h: Tensor) -> Tensor:
        norm = sqrt((self.projection * self.projection).sum() + 1e-12)
        return (h @ self.projection) / norm


class SAGPool(TopKCoarsening):
    """Self-attention graph pooling (Lee et al. 2019).

    Scores come from a one-channel GCN over the graph, so both features
    and topology inform the selection.
    """

    def __init__(self, in_features: int, rng: np.random.Generator, ratio: float = 0.5):
        super().__init__(ratio=ratio, gate="tanh")
        self.score_gcn = GCNLayer(in_features, 1, rng, activation="none")

    def scores(self, adjacency, h: Tensor) -> Tensor:
        return self.score_gcn(adjacency, h).reshape(h.shape[0])


class AttPoolGlobal(TopKCoarsening):
    """AttPool with global soft attention scoring (Huang et al. 2019)."""

    def __init__(self, in_features: int, rng: np.random.Generator, ratio: float = 0.5):
        super().__init__(ratio=ratio, gate="softmax")
        self.att = Parameter(
            glorot_uniform(rng, in_features, 1, shape=(in_features,)), name="att"
        )

    def scores(self, adjacency, h: Tensor) -> Tensor:
        return h @ self.att


class AttPoolLocal(TopKCoarsening):
    """AttPool's local variant: attention balanced by node degree.

    Adding ``log(1 + deg)`` to the logits trades pure feature importance
    against dispersion, as in the original local-attention design.
    """

    def __init__(self, in_features: int, rng: np.random.Generator, ratio: float = 0.5):
        super().__init__(ratio=ratio, gate="softmax")
        self.att = Parameter(
            glorot_uniform(rng, in_features, 1, shape=(in_features,)), name="att"
        )

    def scores(self, adjacency, h: Tensor) -> Tensor:
        adj_data = adjacency.data if isinstance(adjacency, Tensor) else adjacency
        degree = (np.asarray(adj_data) != 0).sum(axis=1)
        return h @ self.att + Tensor(np.log1p(degree))
