"""Closed-loop load generator for :class:`~repro.serve.InferenceService`.

Closed-loop means each client thread keeps exactly one request in
flight: it blocks on the response before issuing the next.  With C
clients the service sees at most C concurrent requests, which is the
regime micro-batching exploits — the worker coalesces whatever the
blocked clients re-issue together.  Throughput and latency are
therefore coupled (no coordinated-omission correction is needed: every
issued request is timed).

The same generator drives both sides of the bench-gate comparison
(tools/bench_gate.py): a ``max_batch_size=1`` service is the serial
one-request-at-a-time baseline, a ``max_batch_size=16`` service is the
micro-batched contender.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LoadReport:
    """Aggregate result of one closed-loop run."""

    kind: str
    clients: int
    requests: int
    errors: int
    wall_s: float
    throughput_rps: float
    p50_s: float
    p99_s: float
    mean_s: float
    batches: int
    mean_batch_size: float
    cache_hit_rate: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "mean_s": self.mean_s,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "cache_hit_rate": self.cache_hit_rate,
        }


def run_closed_loop(
    service,
    graphs,
    *,
    kind: str = "classify",
    clients: int = 4,
    requests_per_client: int = 25,
    k: int = 5,
) -> LoadReport:
    """Drive ``service`` with ``clients`` blocking threads and measure.

    Client ``i`` cycles deterministically over ``graphs[i::clients]``,
    so the workload (and with it the cache hit pattern) is reproducible
    run to run.  Latency percentiles are over *all* issued requests.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("need at least one graph to generate load")
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be positive")

    batches_before = service.stats()["batches"]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def client(i: int) -> None:
        mine = graphs[i::clients] or graphs
        barrier.wait()
        for j in range(requests_per_client):
            graph = mine[j % len(mine)]
            started = time.perf_counter()
            try:
                if kind == "classify":
                    service.classify(graph)
                elif kind == "embed":
                    service.embed(graph)
                elif kind == "top_k":
                    service.top_k(graph, k)
                else:
                    raise ValueError(f"unknown load kind {kind!r}")
            except Exception:
                errors[i] += 1
            latencies[i].append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"loadgen-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started

    samples = np.array([s for per_client in latencies for s in per_client])
    stats = service.stats()
    batches = stats["batches"] - batches_before
    return LoadReport(
        kind=kind,
        clients=clients,
        requests=int(samples.size),
        errors=sum(errors),
        wall_s=wall_s,
        throughput_rps=samples.size / wall_s if wall_s > 0 else float("inf"),
        p50_s=float(np.percentile(samples, 50)),
        p99_s=float(np.percentile(samples, 99)),
        mean_s=float(samples.mean()),
        batches=batches,
        mean_batch_size=samples.size / batches if batches else 0.0,
        cache_hit_rate=stats["cache"]["hit_rate"],
    )
