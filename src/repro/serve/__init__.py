"""Online inference service over trained models (docs/serving.md).

The serving subsystem turns a trained model into a persistent,
concurrent-safe endpoint:

- :class:`InferenceService` — micro-batched request queue behind
  ``classify`` / ``embed`` / ``top_k``, bitwise-faithful to the offline
  ``predict()`` / ``embed()`` surface;
- :class:`EmbeddingCache` — content-addressed LRU of embeddings, keyed
  ``(model_fingerprint, graph_hash)``;
- :class:`EmbeddingIndex` / :func:`build_index` — vectorized
  nearest-neighbour retrieval over a corpus of embeddings;
- :func:`run_closed_loop` / :class:`LoadReport` — the closed-loop load
  generator used by the serving benchmark gate.
"""

from repro.serve.cache import EmbeddingCache
from repro.serve.index import EmbeddingIndex, Neighbor, build_index
from repro.serve.loadgen import LoadReport, run_closed_loop
from repro.serve.service import InferenceService

__all__ = [
    "EmbeddingCache",
    "EmbeddingIndex",
    "InferenceService",
    "LoadReport",
    "Neighbor",
    "build_index",
    "run_closed_loop",
]
