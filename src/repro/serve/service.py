"""Micro-batched in-process inference service (docs/serving.md).

``InferenceService`` owns one worker thread and a request queue.
Callers submit classify / embed / similarity requests from any number
of threads; the worker coalesces whatever is waiting — up to
``max_batch_size`` requests, waiting at most ``max_wait_s`` after the
first one arrives — and executes the whole batch at once:

- **classify** misses run through the unified
  :meth:`~repro.models.classifier.GraphClassifier.predict` batch path,
  so B concurrent requests cost one padded 3-D forward instead of B
  2-D ones (the PR 1 throughput win, amortised across users);
- **embed** runs per graph through ``model.embed`` — the exact offline
  arithmetic — and fills the LRU :class:`~repro.serve.cache.EmbeddingCache`,
  so a repeated graph skips the forward pass entirely and the served
  vector is *bitwise identical* whether it came from the cache or not;
- **top_k** embeds the query (through the same cache) and answers from
  the vectorized :class:`~repro.serve.index.EmbeddingIndex`.

Classification consults the cache too: a cached embedding re-enters the
head via ``logits_from_embedding`` (bit-for-bit the offline ``logits``),
but classify *misses* never populate the cache — the padded batch's
row embeddings match the per-graph path only to float round-off, and
the cache's contract is exactness.

Weight updates are detected by re-fingerprinting the model per batch
(:func:`repro.nn.serialization.module_fingerprint`); a changed
fingerprint purges stale cache entries before anything is served.

Observability (docs/observability.md): per-request latency and batch
size histograms, request/batch/cache counters and a queue-depth gauge
in the process registry, plus a per-batch span tree (``serve/batch`` →
``serve/classify``/``serve/embed``/...) kept in :meth:`stats`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

import numpy as np

from repro.graph.graph import Graph
from repro.graph.hashing import graph_hash
from repro.models.common import EmbeddingResult
from repro.nn.serialization import module_fingerprint
from repro.observe import get_registry, span, trace
from repro.serve.cache import EmbeddingCache
from repro.serve.index import EmbeddingIndex, Neighbor

KINDS = ("classify", "embed", "top_k")


class _Request:
    __slots__ = ("kind", "graph", "k", "future", "enqueued")

    def __init__(self, kind: str, graph: Graph, k: int | None = None):
        self.kind = kind
        self.graph = graph
        self.k = k
        self.future: Future = Future()
        self.enqueued = time.monotonic()


class InferenceService:
    """Persistent micro-batching front-end over a trained model.

    Parameters
    ----------
    model:
        A trained model.  ``classify`` needs ``predict`` (the
        :class:`~repro.models.classifier.GraphClassifier` surface);
        ``embed``/``top_k`` need the uniform ``embed`` contract.  The
        model is switched to ``eval()`` — serving must be deterministic
        (no Gumbel noise, no dropout).
    max_batch_size:
        Most requests one batch may coalesce.  ``1`` is the serial
        baseline: every request runs its own forward.
    max_wait_s:
        Deadline: how long the worker holds the first request of a
        batch waiting for companions.  The latency/throughput knob —
        raise it for throughput under load, lower it for idle latency.
    cache_size:
        LRU capacity of the embedding cache (``cache`` overrides).
    index:
        Optional pre-built :class:`~repro.serve.index.EmbeddingIndex`
        answering ``top_k``; :meth:`add_to_index` grows one on demand.
    """

    def __init__(
        self,
        model,
        *,
        max_batch_size: int = 16,
        max_wait_s: float = 0.002,
        cache_size: int = 1024,
        cache: EmbeddingCache | None = None,
        index: EmbeddingIndex | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s cannot be negative")
        self.model = model
        model.eval()
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.cache = cache if cache is not None else EmbeddingCache(cache_size)
        self.index = index
        self._fingerprint: str | None = None
        self._queue: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._worker: threading.Thread | None = None
        self._batches = 0
        self._last_batch_spans: dict | None = None
        self._registry = get_registry()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceService":
        if self._worker is not None and self._worker.is_alive():
            return self
        self._closed = False
        self._worker = threading.Thread(
            target=self._loop, name="repro-serve", daemon=True
        )
        self._worker.start()
        return self

    def close(self) -> None:
        """Drain outstanding requests, then stop the worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, kind: str, graph: Graph, k: int | None = None) -> Future:
        """Enqueue one request; the Future resolves when its batch ran."""
        if kind not in KINDS:
            raise ValueError(f"unknown request kind {kind!r}; use one of {KINDS}")
        if not isinstance(graph, Graph):
            raise TypeError(f"expected a Graph, got {type(graph).__name__}")
        request = _Request(kind, graph, k)
        with self._cond:
            if self._closed or self._worker is None:
                raise RuntimeError(
                    "service is not running; use `with InferenceService(...)` "
                    "or call start()"
                )
            self._queue.append(request)
            self._registry.gauge("serve/queue_depth").set(len(self._queue))
            self._cond.notify_all()
        self._registry.counter(f"serve/requests_{kind}").inc()
        return request.future

    def classify(self, graph: Graph, timeout: float | None = 30.0) -> int:
        """Blocking predicted class — identical to offline ``predict``."""
        return self.submit("classify", graph).result(timeout)

    def classify_many(self, graphs, timeout: float | None = 30.0) -> list[int]:
        """Submit a burst of classify requests, then gather.

        Submitting everything before the first wait is what lets the
        worker coalesce the burst into padded batches.
        """
        futures = [self.submit("classify", g) for g in graphs]
        return [f.result(timeout) for f in futures]

    def embed(self, graph: Graph, timeout: float | None = 30.0) -> EmbeddingResult:
        """Blocking embedding — bitwise the offline ``embed`` result."""
        return self.submit("embed", graph).result(timeout)

    def top_k(self, graph: Graph, k: int, timeout: float | None = 30.0) -> list[Neighbor]:
        """Nearest indexed neighbours of ``graph`` (Fig.-5 online)."""
        return self.submit("top_k", graph, k=k).result(timeout)

    def add_to_index(self, key, graph: Graph, timeout: float | None = 30.0) -> None:
        """Embed ``graph`` through the service (cache included) and index it."""
        result = self.embed(graph, timeout)
        if self.index is None:
            self.index = EmbeddingIndex(result.dim)
        self.index.add(key, result.vector)

    def stats(self) -> dict:
        """Operational snapshot: queue, batches, cache, index, spans."""
        with self._cond:
            depth = len(self._queue)
        snapshot = self._registry.snapshot()
        return {
            "queue_depth": depth,
            "batches": self._batches,
            "max_batch_size": self.max_batch_size,
            "max_wait_s": self.max_wait_s,
            "cache": self.cache.stats(),
            "index_size": len(self.index) if self.index is not None else 0,
            "model_fingerprint": self._fingerprint,
            "counters": snapshot["counters"],
            "latency": snapshot["histograms"].get("serve/latency_s"),
            "batch_size": snapshot["histograms"].get("serve/batch_size"),
            "last_batch_spans": self._last_batch_spans,
        }

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return  # closed and drained
                # Micro-batching: hold the batch open until it is full
                # or the oldest request has waited max_wait_s.
                deadline = self._queue[0].enqueued + self.max_wait_s
                while (
                    len(self._queue) < self.max_batch_size and not self._closed
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), self.max_batch_size))
                ]
                self._registry.gauge("serve/queue_depth").set(len(self._queue))
            self._process(batch)

    def _process(self, batch: list[_Request]) -> None:
        self._batches += 1
        self._registry.counter("serve/batches").inc()
        self._registry.histogram("serve/batch_size").observe(len(batch))
        with trace("serve/batch") as root:
            with span("serve/fingerprint"):
                fingerprint = module_fingerprint(self.model)
                if fingerprint != self._fingerprint:
                    if self._fingerprint is not None:
                        dropped = self.cache.purge_stale(fingerprint)
                        self._registry.counter(
                            "serve/cache_invalidations"
                        ).inc(dropped)
                    self._fingerprint = fingerprint
            classify = [r for r in batch if r.kind == "classify"]
            if classify:
                with span("serve/classify"):
                    self._serve_classify(classify, fingerprint)
            for request in batch:
                if request.kind == "classify":
                    continue
                with span(f"serve/{request.kind}"):
                    self._serve_embedding(request, fingerprint)
            now = time.monotonic()
            for request in batch:
                self._registry.histogram("serve/latency_s").observe(
                    now - request.enqueued
                )
        self._last_batch_spans = root.to_dict()

    def _cached_vector(self, graph: Graph, fingerprint: str):
        """``(graph_hash, vector | None)`` for a cache lookup."""
        ghash = graph_hash(graph)
        return ghash, self.cache.get(fingerprint, ghash)

    def _serve_classify(self, requests: list[_Request], fingerprint: str) -> None:
        misses: list[_Request] = []
        for request in requests:
            try:
                _, vector = self._cached_vector(request.graph, fingerprint)
            except Exception as exc:
                request.future.set_exception(exc)
                continue
            if vector is None:
                misses.append(request)
            else:
                try:
                    logits = self.model.logits_from_embedding(vector)
                    request.future.set_result(int(np.argmax(logits.data)))
                except Exception as exc:
                    request.future.set_exception(exc)
        if not misses:
            return
        try:
            predictions = self.model.predict([r.graph for r in misses])
        except Exception:
            # One bad graph poisons a padded batch; retry serially so it
            # only fails its own future.
            for request in misses:
                try:
                    request.future.set_result(int(self.model.predict(request.graph)))
                except Exception as exc:
                    request.future.set_exception(exc)
            return
        for request, predicted in zip(misses, predictions):
            request.future.set_result(int(predicted))

    def _serve_embedding(self, request: _Request, fingerprint: str) -> None:
        try:
            ghash, vector = self._cached_vector(request.graph, fingerprint)
            if vector is None:
                vector = np.asarray(self.model.embed(request.graph))
                self.cache.put(fingerprint, ghash, vector)
            if request.kind == "embed":
                request.future.set_result(
                    EmbeddingResult(
                        vector=vector,
                        graph_hash=ghash,
                        model_fingerprint=fingerprint,
                    )
                )
                return
            if self.index is None:
                raise RuntimeError(
                    "service has no similarity index; pass index= or call "
                    "add_to_index first"
                )
            if request.k is None:
                raise ValueError("top_k request needs k")
            request.future.set_result(self.index.top_k(vector, request.k))
        except Exception as exc:
            request.future.set_exception(exc)
