"""LRU cache of graph embeddings, keyed by content (docs/serving.md).

Entries are keyed ``(model_fingerprint, graph_hash)``:

- the *graph hash* (:func:`repro.graph.hashing.graph_hash`) covers
  exactly the forward-pass inputs, so two structurally identical
  featured graphs — including a ``Graph`` rebuilt from its CSR form —
  share one entry;
- the *model fingerprint*
  (:func:`repro.nn.serialization.module_fingerprint`) covers the
  producing weights, so an updated model can never be served a stale
  vector.  :meth:`EmbeddingCache.purge_stale` additionally drops
  entries for old fingerprints eagerly (they could otherwise linger
  until LRU eviction).

The cache stores and returns defensive copies: a served vector must be
bitwise-identical to the offline ``embed()`` result forever, even if a
caller mutates what it was handed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np


class EmbeddingCache:
    """Thread-safe LRU map ``(model_fingerprint, graph_hash) -> vector``."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple[str, str], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, fingerprint: str, graph_hash: str) -> np.ndarray | None:
        """The cached vector (a copy), or None; counts the hit or miss."""
        key = (fingerprint, graph_hash)
        with self._lock:
            vector = self._entries.get(key)
            if vector is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return vector.copy()

    def put(self, fingerprint: str, graph_hash: str, vector: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the least recent."""
        key = (fingerprint, graph_hash)
        with self._lock:
            self._entries[key] = np.array(vector, dtype=np.float64, copy=True)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def purge_stale(self, fingerprint: str) -> int:
        """Drop every entry produced by a *different* fingerprint.

        Called by the service when it observes a weight update; returns
        the number of invalidated entries.
        """
        with self._lock:
            stale = [k for k in self._entries if k[0] != fingerprint]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[tuple[str, str]]:
        """Current keys, least- to most-recently used (for tests)."""
        with self._lock:
            return list(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
