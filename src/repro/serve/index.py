"""Vectorized nearest-neighbour index over graph embeddings.

The online form of the paper's Fig.-5 graph-similarity-search scenario
(docs/serving.md): HAP embeddings of a corpus are held in one dense
``(M, D)`` matrix and a query is answered with a single vectorized
distance computation — no per-candidate Python loop, so ``top_k`` is
O(M·D) numpy work.

Euclidean distance is the default metric because it is what the
hierarchical similarity models optimise
(:func:`repro.models.common.euclidean_distance`); ``metric="cosine"``
is available for length-insensitive retrieval.  Ties are broken by
insertion order (stable argsort), so results are deterministic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

METRICS = ("euclidean", "cosine")


@dataclass(frozen=True)
class Neighbor:
    """One retrieval result: the stored key and its distance."""

    key: object
    distance: float


class EmbeddingIndex:
    """Append-only dense index of ``(key, vector)`` pairs."""

    def __init__(self, dim: int, metric: str = "euclidean"):
        if dim < 1:
            raise ValueError("embedding dimension must be positive")
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; use one of {METRICS}")
        self.dim = dim
        self.metric = metric
        self._keys: list[object] = []
        #: capacity-doubling store; rows [0, len(self)) are live
        self._vectors = np.empty((8, dim), dtype=np.float64)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, key, vector) -> None:
        """Add one embedding under ``key`` (keys need not be unique)."""
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape != (self.dim,):
            raise ValueError(
                f"vector has dimension {vector.shape[0]}, index holds {self.dim}"
            )
        with self._lock:
            n = len(self._keys)
            if n == self._vectors.shape[0]:
                grown = np.empty((2 * n, self.dim), dtype=np.float64)
                grown[:n] = self._vectors[:n]
                self._vectors = grown
            self._vectors[n] = vector
            self._keys.append(key)

    def add_many(self, items) -> None:
        """Add an iterable of ``(key, vector)`` pairs."""
        for key, vector in items:
            self.add(key, vector)

    def _distances(self, query: np.ndarray, store: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            diff = store - query[None, :]
            return np.sqrt(np.einsum("md,md->m", diff, diff))
        norms = np.linalg.norm(store, axis=1) * np.linalg.norm(query)
        sims = store @ query / np.where(norms == 0.0, 1.0, norms)
        return 1.0 - sims

    def top_k(self, vector, k: int) -> list[Neighbor]:
        """The ``k`` nearest stored entries to ``vector``, closest first."""
        if k < 1:
            raise ValueError("k must be positive")
        query = np.asarray(vector, dtype=np.float64).reshape(-1)
        if query.shape != (self.dim,):
            raise ValueError(
                f"query has dimension {query.shape[0]}, index holds {self.dim}"
            )
        with self._lock:
            n = len(self._keys)
            if n == 0:
                return []
            store = self._vectors[:n].copy()
            keys = list(self._keys)
        distances = self._distances(query, store)
        order = np.argsort(distances, kind="stable")[: min(k, n)]
        return [Neighbor(keys[i], float(distances[i])) for i in order]


def build_index(model, graphs, keys=None, metric: str = "euclidean") -> EmbeddingIndex:
    """Index a corpus offline through ``model.embed`` (docs/serving.md).

    ``keys`` defaults to the positional indices of ``graphs``.  For the
    online path — where repeated graphs should hit the embedding cache —
    go through :meth:`repro.serve.InferenceService.add_to_index` instead.
    """
    graphs = list(graphs)
    if keys is None:
        keys = list(range(len(graphs)))
    keys = list(keys)
    if len(keys) != len(graphs):
        raise ValueError(f"{len(keys)} keys for {len(graphs)} graphs")
    index: EmbeddingIndex | None = None
    for key, graph in zip(keys, graphs):
        result = model.embed(graph)
        vector = np.asarray(result)
        if index is None:
            index = EmbeddingIndex(vector.shape[-1], metric=metric)
        index.add(key, vector)
    if index is None:
        raise ValueError("cannot build an index over zero graphs")
    return index
