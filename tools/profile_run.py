"""Profile a small HAP training run (docs/observability.md).

Trains a tiny HAP classifier on synthetic IMDB-B-like graphs with the
op profiler and the span tracer active, then prints two breakdowns:

- per-module: span-tree paths (epoch / step / forward / encoder / moa /
  coarsen / backward / optimizer) with call counts and self time;
- per-op: every autograd op's call count, forward/backward wall time
  and output bytes.

The same report is written as JSON (schema ``repro.profile/v1``) under
``results/`` so successive optimisation PRs can diff breakdowns against
``results/profile_baseline.json``.

    PYTHONPATH=src python tools/profile_run.py [--epochs 2] [--tag baseline]

``--check-resume`` additionally smoke-tests the fault-tolerance path
(docs/checkpointing.md): one checkpointed training run is crashed via
:class:`repro.testing.FaultInjector`, resumed from its latest
checkpoint, and the two run-logs are stitched and verified to carry no
duplicated or skipped step indices across the resume boundary.

``--check-parallel`` smoke-tests the multiprocess engine
(docs/parallelism.md): one small cross-validation runs serially and
with worker processes, the fold accuracies are verified identical, and
the worker-level task spans are reported as a parallel-efficiency
breakdown (busy time per worker / wall time).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core import build_hap_embedder
from repro.data import attach_degree_features, make_imdb_b_like
from repro.models.classifier import GraphClassifier
from repro.observe import aggregate_spans, coverage, profile_ops, trace
from repro.training.trainer import TrainConfig, fit

PROFILE_SCHEMA = "repro.profile/v1"


def profile_training(
    num_graphs: int = 16,
    epochs: int = 2,
    hidden: int = 8,
    batch_size: int = 8,
    seed: int = 0,
    batched: bool = True,
    conv: str = "gcn",
    cluster_sizes: tuple[int, ...] = (4, 2),
) -> dict:
    """Train a small HAP classifier under full instrumentation.

    Returns the ``repro.profile/v1`` report dict (see
    :func:`validate_profile` for the required keys).
    """
    rng = np.random.default_rng(seed)
    graphs = [attach_degree_features(g) for g in make_imdb_b_like(num_graphs, rng)]
    model = GraphClassifier(
        build_hap_embedder(16, hidden, list(cluster_sizes), rng, conv=conv),
        num_classes=2,
        rng=rng,
    )
    config = TrainConfig(epochs=epochs, batch_size=batch_size, batched=batched)

    wall_start = time.perf_counter()
    with profile_ops() as prof:
        with trace("train") as root:
            fit(model, graphs, rng, config)
    wall_time = time.perf_counter() - wall_start

    return {
        "schema": PROFILE_SCHEMA,
        "config": {
            "num_graphs": num_graphs,
            "epochs": epochs,
            "hidden": hidden,
            "batch_size": batch_size,
            "seed": seed,
            "batched": batched,
            "conv": conv,
            "cluster_sizes": list(cluster_sizes),
        },
        "wall_time_s": wall_time,
        "train_time_s": root.duration_s,
        "coverage": coverage(root, "step"),
        "modules": sorted(
            aggregate_spans(root).values(),
            key=lambda row: row["total_s"],
            reverse=True,
        ),
        "ops": prof.summary(),
        "num_parameters": model.num_parameters(),
    }


def validate_profile(report: dict) -> None:
    """Check a profile report against the ``repro.profile/v1`` schema."""
    if report.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"unsupported profile schema {report.get('schema')!r} "
            f"(expected {PROFILE_SCHEMA!r})"
        )
    for key in (
        "config",
        "wall_time_s",
        "train_time_s",
        "coverage",
        "modules",
        "ops",
        "num_parameters",
    ):
        if key not in report:
            raise ValueError(f"profile report is missing {key!r}")
    for field in ("span", "calls", "total_s", "accounted_s", "fraction"):
        if field not in report["coverage"]:
            raise ValueError(f"profile coverage is missing {field!r}")
    for row in report["modules"]:
        for field in ("path", "calls", "total_s", "self_s"):
            if field not in row:
                raise ValueError(f"module row {row} is missing {field!r}")
    for row in report["ops"]:
        for field in (
            "name",
            "calls",
            "forward_s",
            "forward_self_s",
            "backward_calls",
            "backward_s",
            "total_s",
            "bytes_out",
            "peak_bytes",
        ):
            if field not in row:
                raise ValueError(f"op row {row.get('name')!r} is missing {field!r}")


def checkpoint_resume_smoke(
    workdir: str | Path,
    num_graphs: int = 10,
    epochs: int = 3,
    hidden: int = 6,
    batch_size: int = 3,
    seed: int = 0,
    crash_at_step: int = 5,
    checkpoint_every: int = 2,
    cluster_sizes: tuple[int, ...] = (3, 1),
) -> dict:
    """Crash a checkpointed run, resume it, verify the stitched run-log.

    Returns a summary dict (``steps_logged``, ``checkpoints``,
    ``resumed_from``, ``stitched_events``).  Raises if the crash did not
    happen, no checkpoint was left behind, or the stitched log has a
    duplicated/skipped step index.
    """
    from repro.observe import (
        JSONLLogger,
        read_run_log,
        stitch_run_logs,
        validate_run_log,
        validate_stitched_steps,
    )
    from repro.testing import FaultInjector, InjectedFault
    from repro.training import CheckpointManager

    workdir = Path(workdir)
    checkpoint_dir = workdir / "ckpt"
    crash_log = workdir / "crash.jsonl"
    resume_log = workdir / "resume.jsonl"

    def build():
        rng = np.random.default_rng(seed)
        graphs = [
            attach_degree_features(g) for g in make_imdb_b_like(num_graphs, rng)
        ]
        model = GraphClassifier(
            build_hap_embedder(16, hidden, list(cluster_sizes), rng, conv="gcn"),
            num_classes=2,
            rng=rng,
        )
        config = TrainConfig(
            epochs=epochs,
            batch_size=batch_size,
            checkpoint_dir=str(checkpoint_dir),
            checkpoint_every=checkpoint_every,
        )
        return rng, model, graphs, config

    rng, model, graphs, config = build()
    crashed = False
    try:
        fit(
            model, graphs, rng, config,
            callbacks=[
                JSONLLogger(crash_log, log_batches=True),
                FaultInjector(at_step=crash_at_step),
            ],
        )
    except InjectedFault:
        crashed = True
    if not crashed:
        raise RuntimeError(f"fault at step {crash_at_step} never fired")

    latest = CheckpointManager(checkpoint_dir).latest()
    if latest is None:
        raise RuntimeError("crash left no checkpoint to resume from")
    rng, model, graphs, config = build()
    fit(
        model, graphs, rng, config,
        callbacks=[JSONLLogger(resume_log, log_batches=True)],
        resume=latest,
    )

    stitched = stitch_run_logs(read_run_log(crash_log), read_run_log(resume_log))
    validate_run_log(stitched)
    validate_stitched_steps(stitched)
    return {
        "steps_logged": sum(1 for r in stitched if r["event"] == "batch_end"),
        "checkpoints": sum(1 for r in stitched if r["event"] == "checkpoint"),
        "resumed_from": str(latest),
        "stitched_events": len(stitched),
    }


def parallel_smoke(
    n_workers: int = 2,
    method: str = "SumPool",
    dataset: str = "MUTAG",
    folds: int = 4,
    num_graphs: int = 40,
    epochs: int = 3,
    hidden: int = 8,
    seed: int = 0,
) -> dict:
    """Verify parallel==serial on one small cross-validation.

    Returns a summary with per-worker busy times and the parallel
    efficiency of the worker run.  Raises if the parallel fold
    accuracies deviate from serial by a single bit.
    """
    from repro.data import clear_memory_cache
    from repro.evaluation import cross_validate_classification

    kwargs = dict(
        folds=folds, num_graphs=num_graphs, epochs=epochs, hidden=hidden,
        seed=seed,
    )
    serial = cross_validate_classification(method, dataset, **kwargs)
    clear_memory_cache()  # force workers onto their own dataset loads
    parallel = cross_validate_classification(
        method, dataset, n_workers=n_workers, **kwargs
    )
    if serial.fold_accuracies != parallel.fold_accuracies:
        raise RuntimeError(
            "parallel fold accuracies deviate from serial: "
            f"{parallel.fold_accuracies} != {serial.fold_accuracies}"
        )
    run = parallel.pool_run
    busy_by_worker: dict[int, float] = {}
    for stat in run.task_stats:
        busy_by_worker[stat.worker] = (
            busy_by_worker.get(stat.worker, 0.0) + stat.duration_s
        )
    return {
        "n_workers": run.n_workers,
        "fold_accuracies": parallel.fold_accuracies,
        "wall_time_s": run.wall_time_s,
        "busy_time_s": run.busy_time_s,
        "busy_by_worker": busy_by_worker,
        "efficiency": run.efficiency,
        "speedup": run.speedup,
    }


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024:
            return f"{n:.0f}{unit}"
        n /= 1024
    return f"{n:.1f}TB"


def format_report(report: dict) -> str:
    """Render the per-module and per-op breakdown tables."""
    lines = []
    cov = report["coverage"]
    lines.append(
        f"trained {report['config']['epochs']} epochs in "
        f"{report['train_time_s']:.3f}s "
        f"({report['num_parameters']} parameters, "
        f"batched={report['config']['batched']})"
    )
    lines.append(
        f"step coverage: {cov['fraction']:.1%} of {cov['total_s']:.3f}s "
        f"across {cov['calls']} steps accounted for by child spans"
    )
    lines.append("")
    lines.append("per-module (span-tree paths)")
    lines.append(f"{'path':<42}{'calls':>7}{'total_s':>10}{'self_s':>10}")
    for row in report["modules"]:
        lines.append(
            f"{row['path']:<42}{row['calls']:>7}"
            f"{row['total_s']:>10.4f}{row['self_s']:>10.4f}"
        )
    lines.append("")
    lines.append("per-op (autograd engine)")
    lines.append(
        f"{'op':<16}{'calls':>7}{'fwd_s':>9}{'bwd_calls':>10}{'bwd_s':>9}"
        f"{'total_s':>9}{'peak':>8}"
    )
    for row in report["ops"]:
        lines.append(
            f"{row['name']:<16}{row['calls']:>7}{row['forward_s']:>9.4f}"
            f"{row['backward_calls']:>10}{row['backward_s']:>9.4f}"
            f"{row['total_s']:>9.4f}{_fmt_bytes(row['peak_bytes']):>8}"
        )
    op_total = sum(r["total_s"] for r in report["ops"])
    lines.append(f"{'(sum)':<16}{'':>7}{'':>9}{'':>10}{'':>9}{op_total:>9.4f}")
    return "\n".join(lines)


def format_top_ops(report: dict, top: int) -> str:
    """Flat hot-op table: the ``top`` costliest ops by total time.

    One row per op — name, calls, forward *self* time (child ops
    excluded, so composite kernels don't double-count), backward time,
    total, share of all op time, and output bytes — the CLI face of
    ``tools/hotspots.py`` mining, for hotspot triage without reading
    the raw JSON.
    """
    rows = sorted(report["ops"], key=lambda r: r["total_s"], reverse=True)
    op_total = sum(r["total_s"] for r in rows) or 1.0
    lines = [
        f"top {min(top, len(rows))} ops by total time",
        f"{'op':<20}{'calls':>7}{'fwd_self_s':>12}{'bwd_s':>9}"
        f"{'total_s':>9}{'share':>7}{'bytes':>9}",
    ]
    for row in rows[:top]:
        lines.append(
            f"{row['name']:<20}{row['calls']:>7}{row['forward_self_s']:>12.4f}"
            f"{row['backward_s']:>9.4f}{row['total_s']:>9.4f}"
            f"{row['total_s'] / op_total:>7.1%}{_fmt_bytes(row['bytes_out']):>9}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-graphs", type=int, default=16)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--hidden", type=int, default=8)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--conv", default="gcn", choices=["gcn", "gat", "gin", "sage"])
    parser.add_argument(
        "--loop",
        action="store_true",
        help="profile the per-graph loop instead of the padded batched path",
    )
    parser.add_argument("--tag", default="run", help="suffix of the output file name")
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default results/profile_<tag>.json)",
    )
    parser.add_argument(
        "--check-resume",
        action="store_true",
        help="also crash+resume one checkpointed run and verify the "
        "stitched run-log (docs/checkpointing.md)",
    )
    parser.add_argument(
        "--check-parallel",
        action="store_true",
        help="also run one cross-validation serially and with worker "
        "processes, verify identical results and report parallel "
        "efficiency (docs/parallelism.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for --check-parallel",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="also print a flat table of the N hottest ops "
        "(name, calls, fwd/bwd self time, bytes)",
    )
    args = parser.parse_args(argv)

    if args.check_resume:
        import tempfile

        with tempfile.TemporaryDirectory() as workdir:
            summary = checkpoint_resume_smoke(workdir)
        print(
            f"checkpoint/resume smoke: {summary['steps_logged']} steps and "
            f"{summary['checkpoints']} checkpoints stitch cleanly across "
            f"the resume boundary (resumed from {summary['resumed_from']})"
        )

    if args.check_parallel:
        summary = parallel_smoke(n_workers=args.workers)
        per_worker = ", ".join(
            f"w{worker}: {busy:.2f}s"
            for worker, busy in sorted(summary["busy_by_worker"].items())
        )
        print(
            f"parallel smoke: {len(summary['fold_accuracies'])} folds "
            f"identical to serial across {summary['n_workers']} workers; "
            f"wall {summary['wall_time_s']:.2f}s, busy [{per_worker}], "
            f"efficiency {summary['efficiency']:.0%} "
            f"(speedup {summary['speedup']:.2f}x)"
        )

    report = profile_training(
        num_graphs=args.num_graphs,
        epochs=args.epochs,
        hidden=args.hidden,
        batch_size=args.batch_size,
        seed=args.seed,
        batched=not args.loop,
        conv=args.conv,
    )
    validate_profile(report)
    print(format_report(report))
    if args.top > 0:
        print()
        print(format_top_ops(report, args.top))

    out = Path(args.out) if args.out else Path("results") / f"profile_{args.tag}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
