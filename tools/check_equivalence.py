"""Loop-vs-batched equivalence smoke check — a CI gate for the padded
dense-batch execution path (docs/batching.md).

For each of the three downstream tasks (graph classification, graph
matching, graph similarity learning) this builds a HAP embedder, runs a
small set of that task's graphs through both the per-graph loop and the
batched path, and compares per-level embeddings; for classification it
also compares the training loss and every parameter gradient.  Any
deviation above the tolerance makes the process exit nonzero, so a CI
job (or the ``equivalence``-marked test in the default pytest run) fails
the moment the two paths diverge.

    PYTHONPATH=src python tools/check_equivalence.py [--tol 1e-6] [--seed 0]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import build_hap_embedder
from repro.data import (
    attach_degree_features,
    attach_label_features,
    make_aids_like,
    make_imdb_b_like,
    make_matching_dataset,
    pad_graphs,
)
from repro.data.datasets import NUM_ATOM_TYPES
from repro.models.classifier import GraphClassifier
from repro.tensor import Tensor


def _max_level_deviation(embedder, graphs) -> float:
    """Largest |loop - batched| entry across all per-level readouts."""
    embedder.eval()
    batch = pad_graphs(graphs)
    levels_batched = embedder.embed_levels(batch)
    deviation = 0.0
    for i, g in enumerate(graphs):
        levels = embedder.embed_levels(g.adjacency, Tensor(g.features))
        for loop_level, batched_level in zip(levels, levels_batched):
            deviation = max(
                deviation,
                float(np.abs(loop_level.data - batched_level.data[i]).max()),
            )
    return deviation


def check_classification(seed: int) -> dict[str, float]:
    """IMDB-B regime: embeddings, loss and gradients."""
    rng = np.random.default_rng(seed)
    graphs = [attach_degree_features(g) for g in make_imdb_b_like(6, rng)]
    loop_model = GraphClassifier(
        build_hap_embedder(16, 8, [4, 2], np.random.default_rng(seed + 1)),
        2,
        np.random.default_rng(seed + 2),
    )
    batch_model = GraphClassifier(
        build_hap_embedder(16, 8, [4, 2], np.random.default_rng(seed + 1)),
        2,
        np.random.default_rng(seed + 2),
    )
    loop_model.eval()
    batch_model.eval()

    total = None
    for g in graphs:
        loss = loop_model.loss(g)
        total = loss if total is None else total + loss
    total = total * (1.0 / len(graphs))
    total.backward()
    batched = batch_model.batch_loss(graphs)
    batched.backward()

    grad_dev = 0.0
    for (_, p_loop), (_, p_batch) in zip(
        loop_model.named_parameters(), batch_model.named_parameters()
    ):
        grad_dev = max(grad_dev, float(np.abs(p_loop.grad - p_batch.grad).max()))
    return {
        "embedding": _max_level_deviation(loop_model.embedder, graphs),
        "loss": abs(float(total.data) - float(batched.data)),
        "gradients": grad_dev,
    }


def check_matching(seed: int) -> dict[str, float]:
    """Graph matching regime: ragged pair graphs through the embedder."""
    rng = np.random.default_rng(seed)
    pairs = make_matching_dataset(4, 10, rng)
    graphs = [attach_degree_features(g) for pair in pairs for g in (pair.g1, pair.g2)]
    embedder = build_hap_embedder(16, 8, [5, 2], np.random.default_rng(seed + 1))
    return {"embedding": _max_level_deviation(embedder, graphs)}


def check_similarity(seed: int) -> dict[str, float]:
    """GED similarity regime: small labelled molecules (AIDS-like)."""
    rng = np.random.default_rng(seed)
    graphs = [
        attach_label_features(g, NUM_ATOM_TYPES) for g in make_aids_like(8, rng)
    ]
    embedder = build_hap_embedder(
        NUM_ATOM_TYPES, 8, [3, 1], np.random.default_rng(seed + 1)
    )
    return {"embedding": _max_level_deviation(embedder, graphs)}


CHECKS = {
    "classification": check_classification,
    "matching": check_matching,
    "similarity": check_similarity,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tol", type=float, default=1e-6,
                        help="max tolerated |loop - batched| deviation")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    failed = False
    for task, check in CHECKS.items():
        deviations = check(args.seed)
        for name, value in deviations.items():
            status = "ok" if value < args.tol else "DIVERGED"
            if value >= args.tol:
                failed = True
            print(f"{task:15s} {name:10s} max|Δ| = {value:.3e}  {status}")
    if failed:
        print(f"FAILED: loop and batched paths diverge beyond tol={args.tol}")
        return 1
    print("all tasks equivalent: loop and batched paths agree")
    return 0


if __name__ == "__main__":
    sys.exit(main())
