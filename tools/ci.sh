#!/usr/bin/env bash
# Local CI pipeline — the network-free mirror of .github/workflows/ci.yml.
#
# Stages (kept in lock-step with the workflow by tests/test_ci_consistency.py):
#
#   lint          tools/lint.py AST checks (bare except, mutable defaults,
#                 global numpy RNG)
#   tier-1        the full unit/integration/property suite
#   gates         the marker suites: equivalence (batched-vs-loop),
#                 checkpoint (resume bitwise-equivalence), profile
#                 (instrumentation smoke), parallel (multiprocess
#                 determinism), sparse (dense-vs-CSR backend
#                 equivalence), fused (fused-kernel equivalence +
#                 gradchecks), serve (online-serving faithfulness),
#                 streaming (sharded out-of-core pipeline equivalence),
#                 molecular (edge-conditioned forward equivalence +
#                 regression workload)
#   bench-compare tools/bench_gate.py vs results/bench_baseline.json
#
# Usage: tools/ci.sh            (run everything)
#        tools/ci.sh lint tier-1   (run selected stages)

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

stage() { echo; echo "== stage: $1 =="; }

STAGES=("$@")
runs() {
    [ "${#STAGES[@]}" -eq 0 ] && return 0
    for requested in "${STAGES[@]}"; do
        [ "$requested" = "$1" ] && return 0
    done
    return 1
}

if runs lint; then
    stage lint
    python tools/lint.py
fi

if runs tier-1; then
    stage tier-1
    python -m pytest -x -q
fi

if runs gates; then
    stage gates
    python -m pytest -q -m equivalence
    python -m pytest -q -m checkpoint
    python -m pytest -q -m profile
    python -m pytest -q -m parallel
    python -m pytest -q -m sparse
    python -m pytest -q -m fused
    python -m pytest -q -m serve
    python -m pytest -q -m streaming
    python -m pytest -q -m molecular
fi

if runs bench-compare; then
    stage bench-compare
    python tools/bench_gate.py
fi

echo
echo "ci.sh: all requested stages passed"
