"""Render results/*.json into Markdown tables for EXPERIMENTS.md.

Each benchmark persists its row dictionary to ``results/<name>.json``;
this tool turns every file into a Markdown table so the measured side of
EXPERIMENTS.md is regenerable:

    python tools/render_experiments.py            # print all tables
    python tools/render_experiments.py table3     # one experiment
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.evaluation.reports import load_rows, to_markdown

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def render_file(path: Path) -> str:
    title, rows = load_rows(path)
    if not isinstance(rows, dict) or not rows:
        return f"## {title}\n\n(no rows)"
    first = next(iter(rows.values()))
    if not isinstance(first, dict):
        return f"## {title}\n\n(unstructured payload; see {path.name})"
    columns = sorted({c for values in rows.values() for c in values})
    percent = all(
        isinstance(v, (int, float)) and 0.0 <= v <= 1.0
        for values in rows.values()
        for v in values.values()
    )
    table = to_markdown(rows, columns, percent=percent)
    return f"## {title}\n\n{table}"


def main(argv: list[str]) -> int:
    if not RESULTS_DIR.is_dir():
        print("no results/ directory; run the benchmarks first", file=sys.stderr)
        return 1
    pattern = argv[0] if argv else ""
    paths = sorted(RESULTS_DIR.glob("*.json"))
    selected = [p for p in paths if pattern in p.stem]
    if not selected:
        print(f"no results match {pattern!r}", file=sys.stderr)
        return 1
    print("\n\n".join(render_file(p) for p in selected))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
