"""Mine ``results/profile_*.json`` for the hottest autograd ops.

Aggregates every ``repro.profile/v1`` report under ``results/`` (or the
files you name) into one ranked table, so each optimisation PR can
target *measured* cost instead of guessing — the loop described in
docs/performance.md: profile, fuse the top ops, ratchet the bench floor,
repeat.

    PYTHONPATH=src python tools/hotspots.py                # all reports
    PYTHONPATH=src python tools/hotspots.py --top 5
    PYTHONPATH=src python tools/hotspots.py results/profile_run.json

Columns: op name, call count, forward *self* time (composite kernels
don't double-count their children), backward time, total, share of all
op time, and peak output bytes.  ``--per-file`` adds each report's own
top-3, which exposes drift between e.g. the padded-batch and loop
profiles.  Files that are not ``repro.profile/v1`` (like
``profile_overhead.json``) are skipped with a note.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
PROFILE_SCHEMA = "repro.profile/v1"

_AGG_SUM = ("calls", "forward_s", "forward_self_s", "backward_calls",
            "backward_s", "total_s", "bytes_out")
_AGG_MAX = ("peak_bytes",)


def load_reports(paths: list[Path]) -> tuple[list[tuple[Path, dict]], list[Path]]:
    """Read ``paths``; returns (valid ``repro.profile/v1`` reports, skipped)."""
    reports: list[tuple[Path, dict]] = []
    skipped: list[Path] = []
    for path in paths:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            skipped.append(path)
            continue
        if isinstance(data, dict) and data.get("schema") == PROFILE_SCHEMA:
            reports.append((path, data))
        else:
            skipped.append(path)
    return reports, skipped


def aggregate_ops(reports: list[tuple[Path, dict]]) -> list[dict]:
    """Sum per-op rows across reports; ranked by total time, descending."""
    merged: dict[str, dict] = {}
    for _, report in reports:
        for row in report.get("ops", []):
            agg = merged.setdefault(
                row["name"],
                {"name": row["name"], "reports": 0,
                 **{k: 0 for k in _AGG_SUM}, **{k: 0 for k in _AGG_MAX}},
            )
            agg["reports"] += 1
            for key in _AGG_SUM:
                agg[key] += row.get(key, 0)
            for key in _AGG_MAX:
                agg[key] = max(agg[key], row.get(key, 0))
    return sorted(merged.values(), key=lambda r: r["total_s"], reverse=True)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024:
            return f"{n:.0f}{unit}"
        n /= 1024
    return f"{n:.1f}TB"


def format_table(rows: list[dict], top: int) -> str:
    total = sum(r["total_s"] for r in rows) or 1.0
    lines = [
        f"{'#':<3}{'op':<20}{'calls':>8}{'fwd_self_s':>12}{'bwd_s':>9}"
        f"{'total_s':>9}{'share':>7}{'peak':>9}",
    ]
    for rank, row in enumerate(rows[:top], 1):
        lines.append(
            f"{rank:<3}{row['name']:<20}{row['calls']:>8}"
            f"{row['forward_self_s']:>12.4f}{row['backward_s']:>9.4f}"
            f"{row['total_s']:>9.4f}{row['total_s'] / total:>7.1%}"
            f"{_fmt_bytes(row['peak_bytes']):>9}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="profile JSONs to mine (default: results/profile_*.json)",
    )
    parser.add_argument(
        "--results", type=Path, default=REPO / "results",
        help="directory searched for profile_*.json when no files given",
    )
    parser.add_argument("--top", type=int, default=10, metavar="K")
    parser.add_argument(
        "--per-file", action="store_true",
        help="also print each report's own top-3 ops",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="OUT",
        help="additionally write the aggregated ranking as JSON",
    )
    args = parser.parse_args(argv)

    paths = args.files or sorted(args.results.glob("profile_*.json"))
    if not paths:
        print(f"hotspots: no profile_*.json under {args.results}", file=sys.stderr)
        return 1
    reports, skipped = load_reports(paths)
    for path in skipped:
        print(f"hotspots: skipped {path} (not {PROFILE_SCHEMA})")
    if not reports:
        print("hotspots: no valid profile reports to mine", file=sys.stderr)
        return 1

    rows = aggregate_ops(reports)
    names = ", ".join(str(p.name) for p, _ in reports)
    print(f"hotspots: top {min(args.top, len(rows))} ops across "
          f"{len(reports)} report(s): {names}")
    print(format_table(rows, args.top))

    if args.per_file:
        for path, report in reports:
            per = sorted(
                report.get("ops", []), key=lambda r: r["total_s"], reverse=True
            )
            print(f"\n{path.name} (train {report.get('train_time_s', 0):.3f}s)")
            print(format_table(per, 3))

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(
                {"schema": "repro.hotspots/v1",
                 "reports": [str(p) for p, _ in reports],
                 "ops": rows[: args.top]},
                indent=2,
            ) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
