"""Benchmark-regression gate (the ``bench-compare`` stage of tools/ci.sh).

Times the hot paths the parallel-execution PR cares about and fails
when one regresses against the committed baseline:

- ``crossval_serial_s`` — one serial cross-validation (the reference
  execution the parallel engine is measured against);
- ``fold_task_mean_s`` — mean per-fold training time (the unit of work
  the pool schedules);
- ``dataset_build_s`` / ``dataset_cache_load_s`` — a synthetic-dataset
  build vs re-loading it from the ``repro.data.cache`` archive (the
  cache must stay much cheaper than the builder);
- ``crossval_parallel_s`` (multi-core hosts only) — the same
  cross-validation fanned out over worker processes, recorded together
  with ``speedup_vs_serial``;
- ``step_s`` — one HAP training step (forward + backward) on a padded
  dense batch through the fused MOA + coarsening hot path with the
  gradient buffer pool active, exactly as the trainer runs it
  (docs/performance.md); the floor that locks in kernel-fusion wins.
- ``sparse_step_s`` — one HAP training step (forward + backward) on a
  2000-node random sparse graph through the CSR backend
  (docs/sparse.md); guards the gather/scatter kernels against
  accidental densification or quadratic regressions.
- ``serve_p50_s`` / ``serve_p99_s`` — closed-loop request latency of
  the micro-batched inference service (docs/serving.md) under
  concurrent clients, plus a ``serving`` report section with serial
  vs micro-batched throughput and the embed-cache hit rate.  The gate
  *requires* micro-batched throughput strictly above the serial
  one-request-at-a-time baseline, and fails if throughput drops more
  than ``--threshold`` below the committed baseline.
- ``stream_step_s`` — mean time to materialise one shuffled training
  batch through a :class:`repro.data.streaming.StreamingDataset`
  (docs/streaming.md): shard decode + feature attach amortised over
  the LRU window and prefetcher.
- the **molecular regression floor** — a seeded ESOL-like regression
  run (``repro.evaluation.run_regression``, docs/molecular.md) whose
  held-out RMSE must beat the train-mean predictor's RMSE outright,
  and must not drift above the committed baseline RMSE by more than
  ``--threshold``.  A model that silently stops learning from bond
  features stays numerically "correct" on every equivalence suite;
  only a predictive-quality floor catches it.
- the **streaming memory gate** — subprocess RSS probes (a
  ``streaming`` report section): one epoch over a 50k-graph sharded
  corpus must peak *below* the in-memory loader's RSS at 10k graphs,
  and its RSS growth over an import-only interpreter must stay under
  a fixed fraction of the in-memory loader's growth.  This gate is
  absolute (no baseline needed) and is enforced even under
  ``--update-baseline`` — a baseline that violates the out-of-core
  contract must never be committed.

The report is written to ``BENCH_parallel.json`` (schema
``repro.bench/v1``: commit, cpu count, timings, speedup) and compared
against ``results/bench_baseline.json``: any shared timing more than
``--threshold`` (default 25%) slower fails the gate.  Speedup is
*enforced* (``>= --require-speedup``, default 2x) only on hosts with
at least 4 cores — on smaller machines the report carries an explicit
``parallel.note`` ("skipped: N core(s) < 4 ...") instead of bare
nulls, and a speedup recorded by a ≥4-core host *survives* in the
baseline (the ratchet never overwrites it with nulls) so enforcement
re-arms the moment a multi-core host runs the gate.  Passing
``--require-speedup`` *explicitly* on a <4-core host is an error
unless the baseline records a ≥4-core speedup: the flag demands an
enforcement this host cannot perform, and silently skipping it would
report a green gate for a check that never ran.

``--update-baseline`` is a **ratchet**: each timing floor only ever
*improves* (min-merge of old and new; throughput floors max-merge).  A
regression can therefore never be laundered into the baseline by
re-running the update — after a genuine trade-off, rebase explicitly
with ``--reset-baseline``, which rewrites the file wholesale.

    PYTHONPATH=src python tools/bench_gate.py
    PYTHONPATH=src python tools/bench_gate.py --update-baseline  # ratchet
    PYTHONPATH=src python tools/bench_gate.py --reset-baseline   # rebase

The same measurement is exposed to pytest-benchmark through
``benchmarks/test_parallel_speedup.py`` (``pytest -m bench``).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH_SCHEMA = "repro.bench/v1"
DEFAULT_OUT = REPO / "BENCH_parallel.json"
DEFAULT_BASELINE = REPO / "results" / "bench_baseline.json"

#: measurement scale: big enough that fold training dominates process
#: startup, small enough for a CI stage
BENCH_CONFIG = {
    "method": "SumPool",
    "dataset": "IMDB-B",
    "folds": 4,
    "num_graphs": 60,
    "epochs": 8,
    "hidden": 16,
    "seed": 0,
}
PARALLEL_WORKERS = 4

#: serving load: enough concurrent clients that coalesced batches are
#: large enough for the padded forward to dominate queueing overhead
#: (COLLAB graphs are the biggest the generators produce), yet small
#: enough for a CI stage.  HAP is the served model because its padded
#: batch path is where micro-batching pays.
SERVE_CONFIG = {
    "method": "HAP",
    "dataset": "COLLAB",
    "num_graphs": 24,
    "hidden": 16,
    "seed": 0,
    "clients": 8,
    "requests_per_client": 20,
    "max_batch_size": 16,
    "max_wait_s": 0.002,
    "embed_pool": 8,
}

#: molecular regression floor: the smallest seeded ESOL-like run whose
#: scaffold-split test RMSE beats the train-mean predictor with a wide
#: margin (docs/molecular.md) — small enough for a CI stage, large
#: enough that a model that stopped learning cannot pass on noise
MOLECULAR_CONFIG = {
    "method": "HAP",
    "dataset": "ESOL",
    "num_graphs": 150,
    "epochs": 30,
    "hidden": 16,
    "lr": 0.01,
    "seed": 0,
}

#: streaming memory gate: the streamed corpus is 5x the in-memory one,
#: yet one full shuffled epoch must peak below the in-memory loader's
#: RSS — and its growth over a bare interpreter must stay under
#: ``rss_fraction`` of the in-memory loader's growth.  MUTAG keeps the
#: 50k-graph generation inside a CI budget; ``chunked`` shard writing
#: bounds the writer at one shard of graphs (docs/streaming.md).
STREAM_CONFIG = {
    "dataset": "MUTAG",
    "stream_graphs": 50_000,
    "inmem_graphs": 10_000,
    "shard_size": 500,
    "max_cached_shards": 2,
    "seed": 0,
    "rss_fraction": 0.5,
}

#: each probe runs in a fresh interpreter so its peak RSS is
#: attributable to exactly one loading strategy.  /proc VmHWM is the
#: primary source: ``ru_maxrss`` survives fork+exec on Linux, so a
#: child spawned from a fat parent would inherit the *parent's*
#: high-water mark and drown the measurement; VmHWM is reset on exec.
_PROBE_PRELUDE = """\
import resource
import sys

def report_peak_rss():
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    print(int(line.split()[1]))
                    return
    except OSError:
        pass  # no procfs (macOS): fall back to getrusage
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes there, KB on Linux
        rss_kb //= 1024
    print(rss_kb)
"""

_BASELINE_PROBE = _PROBE_PRELUDE + """
import numpy  # noqa: F401
import repro.data.streaming  # noqa: F401
report_peak_rss()
"""

_INMEM_PROBE = _PROBE_PRELUDE + """
from repro.data.cache import load_dataset_cached

name, n, seed, cache_dir = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
)
graphs, dim, _ = load_dataset_cached(name, n, seed, cache_dir=cache_dir)
nodes = sum(g.num_nodes for g in graphs)
assert len(graphs) == n and nodes > 0
report_peak_rss()
"""

_STREAM_PROBE = _PROBE_PRELUDE + """
from repro.data.sharding import shard_dataset
from repro.data.streaming import StreamingDataset

name, n, seed = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
shard_dir, shard_size, window = (
    sys.argv[4], int(sys.argv[5]), int(sys.argv[6])
)
shard_dataset(name, n, seed, shard_dir, shard_size, chunked=True)
nodes = count = 0
with StreamingDataset(shard_dir, max_cached_shards=window) as stream:
    for graph in stream.iter_shuffled(seed):
        nodes += graph.num_nodes
        count += 1
assert count == n and nodes > 0
report_peak_rss()
"""


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO, capture_output=True, text=True, timeout=10,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def measure(config: dict | None = None, parallel_workers: int | None = None) -> dict:
    """Time the hot paths; returns the ``repro.bench/v1`` report."""
    from repro.data import DatasetCache, clear_memory_cache
    from repro.evaluation import cross_validate_classification

    config = dict(BENCH_CONFIG if config is None else config)
    cpu_count = os.cpu_count() or 1
    if parallel_workers is None:
        parallel_workers = min(PARALLEL_WORKERS, cpu_count)
    method = config.pop("method")
    dataset = config.pop("dataset")

    timings: dict[str, float | None] = {}
    with tempfile.TemporaryDirectory() as tmp:
        cache = DatasetCache(tmp)
        clear_memory_cache()
        start = time.perf_counter()
        cache.get_or_build(dataset, config["num_graphs"], config["seed"])
        timings["dataset_build_s"] = time.perf_counter() - start
        clear_memory_cache()
        start = time.perf_counter()
        cache.get_or_build(dataset, config["num_graphs"], config["seed"])
        timings["dataset_cache_load_s"] = time.perf_counter() - start

    serial = cross_validate_classification(method, dataset, **config)
    serial_run = serial.pool_run
    timings["crossval_serial_s"] = serial_run.wall_time_s
    timings["fold_task_mean_s"] = serial_run.busy_time_s / max(
        1, len(serial_run.task_stats)
    )

    timings["step_s"] = _dense_step_time()
    timings["sparse_step_s"] = _sparse_step_time()
    timings["stream_step_s"] = _stream_step_time()

    serving = measure_serving()
    timings["serve_p50_s"] = serving["batched"]["p50_s"]
    timings["serve_p99_s"] = serving["batched"]["p99_s"]

    streaming = measure_streaming_memory()
    molecular = measure_molecular()

    speedup = None
    if parallel_workers > 1:
        clear_memory_cache()
        parallel = cross_validate_classification(
            method, dataset, n_workers=parallel_workers, **config
        )
        if parallel.fold_accuracies != serial.fold_accuracies:
            raise RuntimeError(
                "parallel cross-validation deviated from serial: "
                f"{parallel.fold_accuracies} != {serial.fold_accuracies}"
            )
        timings["crossval_parallel_s"] = parallel.pool_run.wall_time_s
        speedup = timings["crossval_serial_s"] / timings["crossval_parallel_s"]
        parallel_info = {
            "status": "measured",
            "workers": parallel_workers,
            "cpu_count": cpu_count,
            "speedup_vs_serial": speedup,
        }
        if cpu_count < 4:
            parallel_info["note"] = (
                f"recorded only: {cpu_count} core(s) < 4 required for "
                "speedup enforcement"
            )
    else:
        timings["crossval_parallel_s"] = None
        parallel_info = {
            "status": "skipped",
            "workers": parallel_workers,
            "cpu_count": cpu_count,
            "note": (
                f"skipped: {cpu_count} core(s) < 4 — parallel speedup "
                "needs a multi-core host (recorded ≥4-core baselines "
                "survive single-core --update-baseline runs)"
            ),
        }

    return {
        "schema": BENCH_SCHEMA,
        "commit": _git_commit(),
        "time": time.time(),
        "cpu_count": cpu_count,
        "parallel_workers": parallel_workers,
        "config": {"method": method, "dataset": dataset, **config},
        "timings": timings,
        "speedup_vs_serial": speedup,
        "parallel": parallel_info,
        "serving": serving,
        "streaming": streaming,
        "molecular": molecular,
    }


def measure_serving(config: dict | None = None) -> dict:
    """Serial vs micro-batched closed-loop serving (docs/serving.md).

    Both sides run the same closed-loop classify workload through
    :class:`repro.serve.InferenceService`; the only difference is
    ``max_batch_size`` (1 vs many), so the throughput ratio isolates
    what request coalescing buys.  A third run drives a repeated embed
    workload to measure the steady-state cache hit rate.
    """
    import numpy as np

    from repro.evaluation.harness import prepare_dataset
    from repro.models.zoo import make_classifier
    from repro.serve import InferenceService, run_closed_loop

    config = dict(SERVE_CONFIG if config is None else config)
    graphs, dim, num_classes = prepare_dataset(
        config["dataset"], config["num_graphs"], np.random.default_rng(config["seed"])
    )
    model = make_classifier(
        config["method"], dim, num_classes,
        np.random.default_rng(config["seed"]), hidden=config["hidden"],
    )
    model.eval()
    model.predict(graphs)  # warm-up: CSR caches, first-touch allocations
    load = {
        "kind": "classify",
        "clients": config["clients"],
        "requests_per_client": config["requests_per_client"],
    }
    with InferenceService(model, max_batch_size=1, max_wait_s=0.0) as service:
        serial = run_closed_loop(service, graphs, **load)
    with InferenceService(
        model,
        max_batch_size=config["max_batch_size"],
        max_wait_s=config["max_wait_s"],
    ) as service:
        batched = run_closed_loop(service, graphs, **load)
    with InferenceService(
        model,
        max_batch_size=config["max_batch_size"],
        max_wait_s=config["max_wait_s"],
    ) as service:
        embed = run_closed_loop(
            service, graphs[: config["embed_pool"]], kind="embed",
            clients=config["clients"],
            requests_per_client=config["requests_per_client"],
        )
    return {
        "config": config,
        "serial": serial.to_dict(),
        "batched": batched.to_dict(),
        "embed": embed.to_dict(),
        "serial_throughput_rps": serial.throughput_rps,
        "throughput_rps": batched.throughput_rps,
        "batching_speedup": batched.throughput_rps / serial.throughput_rps,
        "cache_hit_rate": embed.cache_hit_rate,
    }


def measure_streaming_memory(config: dict | None = None) -> dict:
    """Peak-RSS comparison of streamed vs in-memory loading.

    Three subprocess probes, each printing its own
    ``getrusage().ru_maxrss``: an import-only interpreter (the shared
    baseline every Python process pays), the in-memory loader at
    ``inmem_graphs``, and a full shuffled epoch over a sharded corpus
    of ``stream_graphs`` — generation *and* consumption, since bounded
    writer memory (chunked per-shard generation) is part of the
    out-of-core contract.  Returns absolute RSS plus the growth deltas
    the gate judges.
    """
    config = dict(STREAM_CONFIG if config is None else config)
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))

    def probe(script: str, *argv) -> float:
        result = subprocess.run(
            [sys.executable, "-c", script, *map(str, argv)],
            capture_output=True, text=True, env=env, cwd=REPO, timeout=900,
        )
        if result.returncode != 0:
            raise RuntimeError(f"memory probe failed:\n{result.stderr}")
        return int(result.stdout.strip().splitlines()[-1]) / 1024.0  # KB -> MB

    with tempfile.TemporaryDirectory() as tmp:
        baseline_mb = probe(_BASELINE_PROBE)
        inmem_mb = probe(
            _INMEM_PROBE, config["dataset"], config["inmem_graphs"],
            config["seed"], os.path.join(tmp, "cache"),
        )
        stream_mb = probe(
            _STREAM_PROBE, config["dataset"], config["stream_graphs"],
            config["seed"], os.path.join(tmp, "shards"),
            config["shard_size"], config["max_cached_shards"],
        )
    inmem_delta = max(inmem_mb - baseline_mb, 0.0)
    stream_delta = max(stream_mb - baseline_mb, 0.0)
    return {
        "config": config,
        "baseline_rss_mb": round(baseline_mb, 1),
        "inmem_rss_mb": round(inmem_mb, 1),
        "stream_rss_mb": round(stream_mb, 1),
        "inmem_delta_mb": round(inmem_delta, 1),
        "stream_delta_mb": round(stream_delta, 1),
        "delta_ratio": (
            round(stream_delta / inmem_delta, 3) if inmem_delta > 0 else None
        ),
    }


def measure_molecular(config: dict | None = None) -> dict:
    """Seeded molecular regression quality floor (docs/molecular.md).

    Trains the edge-conditioned regressor on the ESOL-like workload and
    records its scaffold-split test RMSE/MAE next to the train-mean
    predictor's RMSE — the dumbest possible baseline, which any model
    that actually learned must beat.
    """
    from repro.evaluation import run_regression

    config = dict(MOLECULAR_CONFIG if config is None else config)
    result = run_regression(**config)
    return {
        "config": config,
        "rmse": round(result.rmse, 4),
        "mae": round(result.mae, 4),
        "mean_predictor_rmse": round(result.baseline_rmse, 4),
    }


def molecular_failures(
    molecular: dict, baseline: dict | None, threshold: float
) -> list[str]:
    """Violations of the molecular regression floor.

    Beating the mean predictor is absolute (no baseline needed); the
    committed baseline additionally pins a drift floor — RMSE more than
    ``threshold`` above the recorded value fails even while still under
    the mean predictor.
    """
    failures = []
    if molecular["rmse"] >= molecular["mean_predictor_rmse"]:
        failures.append(
            f"molecular regression: test RMSE {molecular['rmse']:.4f} does "
            f"not beat the train-mean predictor's "
            f"{molecular['mean_predictor_rmse']:.4f} — the model learned "
            "nothing from the molecular features (docs/molecular.md)"
        )
    recorded = (baseline or {}).get("molecular", {}).get("rmse")
    if isinstance(recorded, (int, float)):
        if molecular["rmse"] > recorded * (1.0 + threshold):
            failures.append(
                f"molecular regression: test RMSE {molecular['rmse']:.4f} vs "
                f"baseline {recorded:.4f} "
                f"(+{(molecular['rmse'] / recorded - 1.0):.0%}, threshold "
                f"+{threshold:.0%})"
            )
    return failures


def speedup_enforceable(cpu_count: int, baseline: dict | None) -> bool:
    """Whether a ``--require-speedup`` floor can actually be judged.

    True on a ≥4-core host (this run measures the speedup itself), or
    when the committed baseline carries a speedup recorded by a ≥4-core
    host (the ratchet preserves those, so the floor stays armed).
    """
    if cpu_count >= 4:
        return True
    baseline = baseline or {}
    parallel = baseline.get("parallel") or {}
    return (
        isinstance(baseline.get("speedup_vs_serial"), (int, float))
        and parallel.get("cpu_count", 0) >= 4
    )


def streaming_memory_failures(streaming: dict) -> list[str]:
    """Violations of the out-of-core memory contract (docs/streaming.md)."""
    config = streaming["config"]
    failures = []
    if streaming["stream_rss_mb"] >= streaming["inmem_rss_mb"]:
        failures.append(
            f"streaming memory: {config['stream_graphs']}-graph streamed epoch "
            f"peaked at {streaming['stream_rss_mb']:.0f}MB RSS, not below the "
            f"in-memory loader's {streaming['inmem_rss_mb']:.0f}MB at "
            f"{config['inmem_graphs']} graphs"
        )
    ratio = streaming["delta_ratio"]
    if ratio is not None and ratio > config["rss_fraction"]:
        failures.append(
            f"streaming memory: RSS growth over interpreter baseline is "
            f"{streaming['stream_delta_mb']:.0f}MB streamed vs "
            f"{streaming['inmem_delta_mb']:.0f}MB in-memory "
            f"(ratio {ratio:.2f} > allowed {config['rss_fraction']:.2f})"
        )
    return failures


def _stream_step_time(
    num_graphs: int = 512, shard_size: int = 64, batch_size: int = 8
) -> float:
    """Mean seconds per training batch served from a StreamingDataset.

    One warm-up epoch (page cache, first-touch allocations), then one
    timed shuffled epoch; with the corpus at 8 shards against a 2-shard
    LRU window, the timed epoch pays the steady-state decode +
    feature-attach cost rather than an all-cached fiction.
    """
    from repro.data.sharding import shard_dataset
    from repro.data.streaming import StreamingDataset, clear_manifest_memo

    with tempfile.TemporaryDirectory() as tmp:
        clear_manifest_memo()
        shard_dataset("MUTAG", num_graphs, 0, tmp, shard_size, chunked=True)
        with StreamingDataset(tmp, max_cached_shards=2) as stream:

            def epoch(seed: int) -> None:
                order = stream.shuffled_order(seed)
                stream.plan_epoch(order)
                for index in order:
                    stream[int(index)]

            epoch(0)  # warm-up outside the timed region
            start = time.perf_counter()
            epoch(1)
            elapsed = time.perf_counter() - start
        clear_manifest_memo()
    return elapsed / max(1, num_graphs // batch_size)


def _dense_step_time(
    batch_size: int = 8, n: int = 64, features: int = 8
) -> float:
    """Seconds for one warm padded-batch HAP forward+backward.

    The fused MOA + coarsening hot path (docs/performance.md) on a
    dense ``(B, N, ·)`` padded batch, with the gradient buffer pool
    active and warm — exactly the per-step work the trainer does with
    ``TrainConfig(batched=True)``.
    """
    import numpy as np

    from repro.core import build_hap_embedder
    from repro.tensor import BufferPool, Tensor, buffer_pool

    embedder = build_hap_embedder(
        features, 16, [16, 4], np.random.default_rng(0)
    )
    embedder.eval()
    rng = np.random.default_rng(1)
    upper = np.triu(rng.random((batch_size, n, n)) < 0.15, 1).astype(np.float64)
    adjacency = upper + np.swapaxes(upper, 1, 2)
    counts = rng.integers(n // 2, n + 1, size=batch_size)
    mask = (np.arange(n)[None, :] < counts[:, None]).astype(np.float64)
    adjacency *= mask[:, :, None] * mask[:, None, :]
    feats = rng.normal(size=(batch_size, n, features))
    pool = BufferPool()

    def step() -> None:
        with buffer_pool(pool):
            embedder.zero_grad()
            levels = embedder.embed_levels(adjacency, Tensor(feats), mask)
            total = levels[0].sum()
            for level in levels[1:]:
                total = total + level.sum()
            total.backward()

    step()  # warm-up outside the timed region (primes the pool too)
    start = time.perf_counter()
    step()
    return time.perf_counter() - start


def _sparse_step_time(n: int = 2000, avg_degree: int = 8) -> float:
    """Seconds for one warm HAP forward+backward on the CSR backend."""
    import numpy as np

    from repro.core import build_hap_embedder
    from repro.graph import random_sparse_csr
    from repro.tensor import BufferPool, Tensor, buffer_pool

    embedder = build_hap_embedder(8, 16, [16, 4], np.random.default_rng(0))
    embedder.eval()
    csr = random_sparse_csr(n, avg_degree, np.random.default_rng(1))
    features = np.random.default_rng(2).normal(size=(n, 8))
    pool = BufferPool()

    def step() -> None:
        with buffer_pool(pool):
            embedder.zero_grad()
            levels = embedder.embed_levels(csr, Tensor(features))
            total = levels[0].sum()
            for level in levels[1:]:
                total = total + level.sum()
            total.backward()

    step()  # warm-up outside the timed region (primes the pool too)
    start = time.perf_counter()
    step()
    return time.perf_counter() - start


def ratchet_baseline(baseline: dict | None, report: dict) -> tuple[dict, list[str]]:
    """Merge ``report`` into ``baseline`` so every floor only improves.

    Timings keep the *faster* of old and new; throughput floors keep
    the *higher*; a speedup recorded by a ≥4-core host survives runs
    that could not measure one.  The second return value lists the
    floors this run lowered (for the CLI summary).  A slower value is
    never written, so regressions cannot be laundered into the baseline
    by re-running ``--update-baseline`` — an intentional trade-off
    needs an explicit ``--reset-baseline``.
    """
    if not baseline or baseline.get("schema") != BENCH_SCHEMA:
        return report, sorted(
            name for name, value in report.get("timings", {}).items()
            if isinstance(value, (int, float))
        )
    merged = dict(report)
    improved: list[str] = []
    old_timings = baseline.get("timings", {})
    new_timings = dict(report.get("timings", {}))
    for name, old in old_timings.items():
        if not isinstance(old, (int, float)):
            continue
        new = new_timings.get(name)
        if not isinstance(new, (int, float)) or new > old:
            new_timings[name] = old  # keep the recorded floor
        elif new < old:
            improved.append(name)
    improved.extend(
        name for name, value in new_timings.items()
        if name not in old_timings and isinstance(value, (int, float))
    )
    merged["timings"] = new_timings

    # Higher-is-better floors ratchet upward.
    old_speedup = baseline.get("speedup_vs_serial")
    new_speedup = merged.get("speedup_vs_serial")
    keep_old_parallel = isinstance(old_speedup, (int, float)) and (
        not isinstance(new_speedup, (int, float)) or new_speedup < old_speedup
    )
    if keep_old_parallel:
        merged["speedup_vs_serial"] = old_speedup
        if "parallel" in baseline:
            merged["parallel"] = baseline["parallel"]
    old_rps = (baseline.get("serving") or {}).get("throughput_rps")
    serving = merged.get("serving")
    if (
        isinstance(serving, dict)
        and isinstance(old_rps, (int, float))
        and serving.get("throughput_rps", 0) < old_rps
    ):
        serving = dict(serving)
        serving["throughput_rps"] = old_rps
        merged["serving"] = serving

    # Lower-is-better quality floor: the recorded molecular RMSE only
    # ever tightens (whichever side is lower keeps its whole record).
    old_molecular = baseline.get("molecular")
    new_molecular = merged.get("molecular")
    if isinstance(old_molecular, dict) and isinstance(
        old_molecular.get("rmse"), (int, float)
    ):
        new_rmse = (new_molecular or {}).get("rmse")
        if not isinstance(new_rmse, (int, float)) or new_rmse > old_molecular["rmse"]:
            merged["molecular"] = old_molecular
        elif new_rmse < old_molecular["rmse"]:
            improved.append("molecular.rmse")
    return merged, sorted(improved)


def compare(report: dict, baseline: dict, threshold: float) -> list[str]:
    """Regressions of ``report`` vs ``baseline`` beyond ``threshold``.

    Only timings present and numeric in *both* reports are compared, so
    a single-core run is never judged against a multi-core baseline's
    parallel timings.  Millisecond-scale timings get an absolute grace
    of 25ms on top of the relative threshold — scheduler jitter on a
    shared CI runner must not flap the gate.
    """
    failures = []
    base_timings = baseline.get("timings", {})
    for name, value in report["timings"].items():
        base = base_timings.get(name)
        if not isinstance(value, (int, float)) or not isinstance(base, (int, float)):
            continue
        if value > base * (1.0 + threshold) and value - base > 0.025:
            failures.append(
                f"{name}: {value:.3f}s vs baseline {base:.3f}s "
                f"(+{(value / base - 1.0):.0%}, threshold +{threshold:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="fail when a hot path is this fraction slower than baseline",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None,
        help="minimum parallel speedup (default 2.0), enforced on hosts "
        "with >= 4 cores; passing the flag explicitly on a smaller host "
        "errors out unless the baseline records a >=4-core speedup",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker count (default: min(4, cpu_count))",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="ratchet the baseline: keep the best of old and new for "
        "every floor (timings min-merge, throughput max-merge); "
        "regressions are never written",
    )
    parser.add_argument(
        "--reset-baseline", action="store_true",
        help="rewrite the baseline wholesale from this run (explicit "
        "rebase after an intentional trade-off)",
    )
    args = parser.parse_args(argv)

    require_speedup = 2.0 if args.require_speedup is None else args.require_speedup
    cpu_count = os.cpu_count() or 1
    if args.require_speedup is not None and cpu_count < 4:
        committed = None
        if args.baseline.exists():
            committed = json.loads(args.baseline.read_text(encoding="utf-8"))
        if not speedup_enforceable(cpu_count, committed):
            print(
                f"bench ERROR: --require-speedup {args.require_speedup:.1f} "
                f"was explicitly requested, but this host has {cpu_count} "
                f"core(s) (< 4) and {args.baseline} records no >=4-core "
                "speedup — the floor cannot be enforced here.  Run the gate "
                "on a >=4-core host (which also records the speedup into the "
                "baseline) or drop --require-speedup."
            )
            return 2

    report = measure(parallel_workers=args.workers)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    speedup = report["speedup_vs_serial"]
    if speedup is not None:
        detail = (
            f"parallel {report['timings']['crossval_parallel_s']:.2f}s "
            f"({report['parallel_workers']} workers on "
            f"{report['cpu_count']} core(s), speedup {speedup:.2f}x)"
        )
    else:
        detail = report["parallel"].get("note", "parallel timing skipped")
    print(
        f"bench: serial {report['timings']['crossval_serial_s']:.2f}s, "
        f"{detail}, wrote {args.out.relative_to(REPO)}"
    )
    print(
        f"bench: step {report['timings']['step_s'] * 1e3:.2f}ms padded-dense, "
        f"{report['timings']['sparse_step_s'] * 1e3:.2f}ms sparse (2000 nodes)"
    )
    serving = report["serving"]
    print(
        f"bench: serving {serving['throughput_rps']:.0f} req/s micro-batched "
        f"vs {serving['serial_throughput_rps']:.0f} req/s serial "
        f"({serving['batching_speedup']:.2f}x), p50 "
        f"{report['timings']['serve_p50_s'] * 1e3:.2f}ms, p99 "
        f"{report['timings']['serve_p99_s'] * 1e3:.2f}ms, cache hit rate "
        f"{serving['cache_hit_rate']:.0%}"
    )
    streaming = report["streaming"]
    print(
        f"bench: streaming {streaming['config']['stream_graphs']} graphs "
        f"peaked at {streaming['stream_rss_mb']:.0f}MB RSS vs in-memory "
        f"{streaming['config']['inmem_graphs']} graphs at "
        f"{streaming['inmem_rss_mb']:.0f}MB (interpreter baseline "
        f"{streaming['baseline_rss_mb']:.0f}MB), stream_step "
        f"{report['timings']['stream_step_s'] * 1e3:.2f}ms"
    )
    molecular = report["molecular"]
    print(
        f"bench: molecular test RMSE {molecular['rmse']:.4f} "
        f"(MAE {molecular['mae']:.4f}) vs mean-predictor "
        f"{molecular['mean_predictor_rmse']:.4f}"
    )

    # These contracts are absolute — no baseline required, and
    # --update-baseline must not launder a violation into the baseline.
    absolute_failures = streaming_memory_failures(streaming)
    absolute_failures += molecular_failures(molecular, None, args.threshold)
    for failure in absolute_failures:
        print(f"bench REGRESSION: {failure}")
    if absolute_failures:
        return 1

    if args.update_baseline or args.reset_baseline:
        old = None
        if args.update_baseline and not args.reset_baseline and args.baseline.exists():
            old = json.loads(args.baseline.read_text(encoding="utf-8"))
        if args.reset_baseline:
            merged, improved = report, ["(reset)"]
        else:
            merged, improved = ratchet_baseline(old, report)
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(merged, indent=2) + "\n", encoding="utf-8"
        )
        verb = "reset" if args.reset_baseline else "ratcheted"
        what = ", ".join(improved) if improved else "no floor improved"
        print(
            f"bench: baseline {verb} at {args.baseline.relative_to(REPO)} "
            f"({what})"
        )
        return 0

    if not args.baseline.exists():
        print(
            f"bench: no baseline at {args.baseline} — run with "
            "--update-baseline to create one (gate passes vacuously)"
        )
        return 0
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    if baseline.get("schema") != BENCH_SCHEMA:
        print(f"bench: baseline schema {baseline.get('schema')!r} unsupported")
        return 1
    failures = compare(report, baseline, args.threshold)
    failures.extend(molecular_failures(molecular, baseline, args.threshold))
    # Micro-batching must strictly beat serving one request at a time —
    # the whole point of the request queue (docs/serving.md).
    if serving["throughput_rps"] <= serving["serial_throughput_rps"]:
        failures.append(
            f"serving throughput: micro-batched {serving['throughput_rps']:.0f} "
            f"req/s not above serial {serving['serial_throughput_rps']:.0f} req/s"
        )
    base_serving = baseline.get("serving")
    if base_serving and isinstance(base_serving.get("throughput_rps"), (int, float)):
        floor = base_serving["throughput_rps"] * (1.0 - args.threshold)
        if serving["throughput_rps"] < floor:
            failures.append(
                f"serving throughput: {serving['throughput_rps']:.0f} req/s vs "
                f"baseline {base_serving['throughput_rps']:.0f} req/s "
                f"(below -{args.threshold:.0%} floor)"
            )
    if report["cpu_count"] >= 4 and speedup is not None:
        if speedup < require_speedup:
            failures.append(
                f"speedup_vs_serial: {speedup:.2f}x < required "
                f"{require_speedup:.1f}x on a {report['cpu_count']}-core host"
            )
    elif speedup is not None:
        print(
            f"bench: speedup {speedup:.2f}x recorded but not enforced "
            f"({report['cpu_count']} core(s) < 4)"
        )
    else:
        base_parallel = baseline.get("parallel") or {}
        base_speedup = baseline.get("speedup_vs_serial")
        if (
            isinstance(base_speedup, (int, float))
            and base_parallel.get("cpu_count", 0) >= 4
        ):
            print(
                f"bench: {report['parallel']['note']}; baseline keeps the "
                f"{base_speedup:.2f}x speedup recorded on a "
                f"{base_parallel['cpu_count']}-core host, so enforcement "
                "re-arms on the next multi-core run"
            )
    for failure in failures:
        print(f"bench REGRESSION: {failure}")
    if failures:
        return 1
    print("bench: no regression against baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
