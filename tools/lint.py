"""AST-based repository linter (first stage of tools/ci.sh).

Eight rules, each targeting a bug class this codebase has actually had
to design around:

- **no-bare-except** — ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit``; worker processes that catch those hang the pool
  instead of dying loudly.  Catch a concrete exception type (at
  minimum ``Exception``).
- **no-mutable-default** — ``def f(x=[])`` shares one list across
  calls; with task payloads pickled into worker processes the shared
  state silently diverges between parent and workers.
- **no-global-numpy-random** — ``np.random.seed`` / ``np.random.rand``
  and friends draw from the process-global legacy RNG.  The parallel
  engine (docs/parallelism.md) makes this a real bug class: the global
  stream differs per worker and per schedule, so any code relying on
  it loses bitwise determinism.  Use ``np.random.default_rng`` /
  ``SeedSequence`` streams threaded through call sites instead.
- **no-densify-in-sparse-path** — the point of the sparse CSR backend
  (docs/sparse.md) is O(E) peak memory; one stray ``.to_dense()`` or
  ``np.eye(n)`` inside a sparse code path silently reintroduces the
  O(N²) allocation the backend exists to avoid, and no functional test
  catches it (the numbers stay correct).  Inside ``src/`` functions
  whose names contain ``sparse`` (the naming convention for sparse
  execution paths), calls to ``.to_dense()`` / ``.toarray()`` /
  ``.todense()``, ``np.eye`` and square-shaped ``np.zeros/ones/full``
  allocations are flagged.  Tests and benchmarks are exempt — they
  densify deliberately to compare against the dense reference.
- **no-deprecated-predict-batch** — ``predict_batch`` is a deprecation
  shim for the unified ``predict()`` surface (docs/serving.md); library
  code inside ``src/`` must call ``predict()`` directly so the shim can
  eventually be deleted.  Tests are exempt — they exercise the shim's
  warning on purpose.
- **no-unfused-attention** — the MOA/coarsening hot path runs through
  the fused kernels ``masked_softmax_mean`` / ``matmul_tn`` /
  ``coarsen_chain`` (docs/performance.md), which skip the materialised
  ``(B, N, N)`` softmax intermediate and its tape nodes.  A function in
  ``src/repro/core/`` or ``src/repro/pooling/`` that calls
  ``masked_softmax`` and then ``bmm``/``matmul`` has reintroduced the
  unfused composition — every number stays correct, only the step time
  and peak memory regress, so no functional test catches it.  Tests
  and benchmarks are exempt (the fused-gate suites build the unfused
  composition on purpose to compare against).
- **no-materialize-in-streaming-path** — the out-of-core pipeline
  (docs/streaming.md) holds a bounded LRU window of shards; one stray
  ``list(dataset)`` / ``sorted(examples)`` inside a streaming code
  path pulls the whole corpus into RAM and silently cancels the memory
  contract the bench gate enforces — while every functional result
  stays correct.  Inside ``src/`` streaming scopes (modules named
  ``streaming*`` or functions whose names contain ``stream``), calls
  to ``list()`` / ``sorted()`` / ``tuple()`` over an identifier that
  looks like a corpus (``dataset``, ``stream``, ``shard``, ``graphs``,
  ``examples``, ``items``, ``view``) are flagged.  Tests and
  benchmarks are exempt — equivalence suites materialise both sides on
  purpose.
- **no-dropped-edge-attr** — a GNN layer that accepts ``edge_attr``
  but never reads it silently ignores the bond features the caller
  passed, and every functional test on unconditioned data still
  passes (docs/molecular.md).  Inside ``src/repro/gnn``, a function
  with an ``edge_attr`` parameter must reference it in its body —
  consume it or raise (``GCNLayer`` raises, which counts).

Usage::

    python tools/lint.py [paths...]     # default: src tools tests benchmarks examples

Exit code 0 when clean, 1 with one ``path:line: [rule] message`` per
finding otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = ("src", "tools", "tests", "benchmarks", "examples")

#: members of numpy.random that are safe under parallel execution —
#: everything constructed from an explicit seed or seed sequence
ALLOWED_NP_RANDOM = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "Philox",
    "SFC64",
    "MT19937",
}

MUTABLE_CALLS = {"list", "dict", "set"}

#: methods that materialise a dense array from a sparse structure
DENSIFY_METHODS = {"to_dense", "toarray", "todense"}

#: numpy allocators that can build an (N, N) dense matrix
DENSE_ALLOCATORS = {"zeros", "ones", "full", "empty"}

#: builtins that materialise their whole argument at once
MATERIALIZERS = {"list", "sorted", "tuple"}

#: identifier substrings that suggest the argument is a graph corpus
#: rather than a small bookkeeping collection
CORPUS_HINTS = ("dataset", "stream", "shard", "graphs", "examples", "items", "view")

#: the unfused attention softmax and the dense products it used to feed;
#: calling both in one hot-path function is the pre-fusion composition
UNFUSED_SOFTMAX = {"masked_softmax"}
UNFUSED_PRODUCTS = {"bmm", "matmul"}


def _own_scope_call_names(node: ast.AST) -> set[str]:
    """Names of functions called directly in ``node``'s body.

    Nested function definitions are skipped — they are visited (and
    checked) as their own scopes.
    """
    names: set[str] = set()
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
        stack.extend(ast.iter_child_nodes(child))
    return names


def _is_np_random(node: ast.AST) -> bool:
    """Match ``np.random`` / ``numpy.random`` attribute chains."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


class Linter(ast.NodeVisitor):
    def __init__(self, path: Path):
        self.path = path
        self.findings: list[tuple[int, str, str]] = []
        #: densification and deprecated-API rules are only policed in
        #: library code; tests and benchmarks densify / call the shims
        #: on purpose
        self.police_densify = "src" in path.parts
        self.police_deprecated = "src" in path.parts
        self.police_materialize = "src" in path.parts
        #: fusion is policed in the hot-path packages only: the MOA /
        #: coarsening core and the pooling operator zoo
        self.police_fusion = "src" in path.parts and (
            "core" in path.parts or "pooling" in path.parts
        )
        #: edge-attribute plumbing is policed in the GNN layer package,
        #: where a dropped operand silently un-conditions the model
        self.police_edge_attr = "src" in path.parts and "gnn" in path.parts
        self._sparse_depth = 0
        #: a whole module named streaming* is one streaming scope
        self._stream_depth = int(
            self.police_materialize and path.stem.startswith("streaming")
        )

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append((node.lineno, rule, message))

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node, "no-bare-except",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "catch a concrete exception type",
            )
        self.generic_visit(node)

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in MUTABLE_CALLS
            )
            if mutable:
                self.report(
                    default, "no-mutable-default",
                    f"mutable default argument in {node.name}(); "
                    "use None and construct inside the function",
                )

    def _check_fusion(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if not self.police_fusion:
            return
        called = _own_scope_call_names(node)
        if called & UNFUSED_SOFTMAX and called & UNFUSED_PRODUCTS:
            softmax_name = ", ".join(sorted(called & UNFUSED_SOFTMAX))
            product_name = ", ".join(sorted(called & UNFUSED_PRODUCTS))
            self.report(
                node, "no-unfused-attention",
                f"{node.name}() composes {softmax_name} with {product_name} "
                "— the unfused attention path materialises the (B, N, N) "
                "softmax intermediate; use masked_softmax_mean / matmul_tn "
                "/ coarsen_chain instead (docs/performance.md)",
            )

    def _check_edge_attr(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if not self.police_edge_attr:
            return
        params = [
            arg.arg
            for arg in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
        ]
        if "edge_attr" not in params:
            return
        reads = any(
            isinstance(child, ast.Name) and child.id == "edge_attr"
            for body_node in node.body
            for child in ast.walk(body_node)
        )
        if not reads:
            self.report(
                node, "no-dropped-edge-attr",
                f"{node.name}() accepts edge_attr but never reads it — the "
                "bond features the caller passed are silently dropped; "
                "consume the operand or raise (docs/molecular.md)",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_fusion(node)
        self._check_edge_attr(node)
        sparse_scope = self.police_densify and "sparse" in node.name
        stream_scope = self.police_materialize and "stream" in node.name
        if sparse_scope:
            self._sparse_depth += 1
        if stream_scope:
            self._stream_depth += 1
        self.generic_visit(node)
        if sparse_scope:
            self._sparse_depth -= 1
        if stream_scope:
            self._stream_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_fusion(node)
        self._check_edge_attr(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self.police_deprecated
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "predict_batch"
        ):
            self.report(
                node, "no-deprecated-predict-batch",
                "predict_batch() is a deprecation shim; call predict() "
                "with the batch directly (docs/serving.md)",
            )
        if (
            self._stream_depth
            and isinstance(node.func, ast.Name)
            and node.func.id in MATERIALIZERS
            and node.args
        ):
            target = node.args[0]
            identifier = None
            if isinstance(target, ast.Name):
                identifier = target.id
            elif isinstance(target, ast.Attribute):
                identifier = target.attr
            if identifier is not None and any(
                hint in identifier.lower() for hint in CORPUS_HINTS
            ):
                self.report(
                    node, "no-materialize-in-streaming-path",
                    f"{node.func.id}({identifier}) inside a streaming code "
                    "path materialises the whole corpus in RAM, defeating "
                    "the bounded shard window (docs/streaming.md); iterate "
                    "or index instead",
                )
        if self._sparse_depth:
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in DENSIFY_METHODS:
                    self.report(
                        node, "no-densify-in-sparse-path",
                        f".{func.attr}() inside a sparse code path "
                        "materialises the dense (N, N) matrix the CSR "
                        "backend exists to avoid (docs/sparse.md)",
                    )
                elif (
                    isinstance(func.value, ast.Name)
                    and func.value.id in ("np", "numpy")
                ):
                    if func.attr == "eye":
                        self.report(
                            node, "no-densify-in-sparse-path",
                            "np.eye allocates a dense (N, N) matrix inside "
                            "a sparse code path; use CSRMatrix.with_self_loops "
                            "or index arithmetic instead (docs/sparse.md)",
                        )
                    elif func.attr in DENSE_ALLOCATORS and node.args:
                        shape = node.args[0]
                        if (
                            isinstance(shape, ast.Tuple)
                            and len(shape.elts) == 2
                            and ast.dump(shape.elts[0]) == ast.dump(shape.elts[1])
                        ):
                            self.report(
                                node, "no-densify-in-sparse-path",
                                f"np.{func.attr} with a square (n, n) shape "
                                "inside a sparse code path is an O(N²) "
                                "allocation (docs/sparse.md)",
                            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_np_random(node.value) and node.attr not in ALLOWED_NP_RANDOM:
            self.report(
                node, "no-global-numpy-random",
                f"np.random.{node.attr} uses the process-global legacy RNG "
                "(non-deterministic under parallel workers); use "
                "np.random.default_rng / SeedSequence streams",
            )
        self.generic_visit(node)


def lint_file(path: Path) -> list[str]:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [f"{path}:{exc.lineno}: [syntax] {exc.msg}"]
    linter = Linter(path)
    linter.visit(tree)
    relative = path.relative_to(REPO) if path.is_relative_to(REPO) else path
    return [
        f"{relative}:{line}: [{rule}] {message}"
        for line, rule, message in sorted(linter.findings)
    ]


def lint_paths(paths: list[Path]) -> list[str]:
    findings: list[str] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            findings.extend(lint_file(path))
    return findings


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    paths = [Path(p) for p in argv] if argv else [REPO / p for p in DEFAULT_PATHS]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(map(str, missing))}")
        return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    checked = sum(
        1 if p.is_file() else len(list(p.rglob("*.py"))) for p in paths
    )
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"lint: {checked} files checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
