"""Table 3: graph classification accuracy.

Trains every pooling method of the paper's Table 3 on all six
classification datasets (synthetic substitutes) under identical budgets
and prints the accuracy matrix.  The paper's qualitative shape to check
against EXPERIMENTS.md: HAP wins most datasets, gPool is strongest on
COLLAB, Top-K methods trail grouped methods on motif-arrangement data.
"""

from conftest import persist_rows, run_once
from repro.evaluation.harness import format_table, run_classification
from repro.models import zoo

DATASETS = ["IMDB-B", "IMDB-M", "COLLAB", "MUTAG", "PROTEINS", "PTC"]
HARD_DATASETS = {"MUTAG", "PTC"}  # long plateau before the signal is found


def test_table3_graph_classification(benchmark, profile):
    def experiment():
        rows: dict[str, dict[str, float]] = {}
        for method in zoo.CLASSIFICATION_METHODS:
            rows[method] = {}
            for dataset in DATASETS:
                epochs = (
                    profile["epochs_hard"]
                    if dataset in HARD_DATASETS
                    else profile["epochs"]
                )
                result = run_classification(
                    method,
                    dataset,
                    seed=0,
                    num_graphs=profile["num_graphs"],
                    epochs=epochs,
                    hidden=profile["hidden"],
                    cluster_sizes=(6, 1),
                )
                rows[method][dataset] = result.accuracy
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(rows, DATASETS, "Table 3: graph classification accuracy"))
    benchmark.extra_info["rows"] = rows
    persist_rows("table3_graph_classification", rows)
    # Every method produced a full row of valid accuracies.
    for method, values in rows.items():
        assert set(values) == set(DATASETS)
        assert all(0.0 <= v <= 1.0 for v in values.values())
