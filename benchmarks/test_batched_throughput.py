"""Throughput of the padded dense-batch execution path vs the per-graph
loop (docs/batching.md).

Measures training-step throughput (forward + backward, graphs/second)
of a HAP graph classifier on the synthetic IMDB-B generator at batch
sizes B ∈ {1, 8, 32}.  The loop path pays B full autograd tapes per
step; the batched path pays one tape of 3-D ops, which is where the
speed-up comes from.  The acceptance bar for this reproduction is a
≥ 2x speed-up at B = 32.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import persist_rows, run_once
from repro.core import build_hap_embedder
from repro.data import attach_degree_features, make_imdb_b_like
from repro.models.classifier import GraphClassifier

BATCH_SIZES = (1, 8, 32)


def _build_model(hidden: int, seed: int) -> GraphClassifier:
    embedder = build_hap_embedder(16, hidden, [6, 2], np.random.default_rng(seed))
    return GraphClassifier(embedder, 2, np.random.default_rng(seed + 1))


def _loop_step(model, chunk):
    model.zero_grad()
    total = None
    for g in chunk:
        loss = model.loss(g)
        total = loss if total is None else total + loss
    (total * (1.0 / len(chunk))).backward()


def _batched_step(model, chunk):
    model.zero_grad()
    model.batch_loss(chunk).backward()


def _time_steps(step, model, graphs, batch_size, repeats) -> float:
    """Seconds per full pass over ``graphs`` (best of ``repeats``)."""
    chunks = [
        graphs[start : start + batch_size]
        for start in range(0, len(graphs), batch_size)
    ]
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        for chunk in chunks:
            step(model, chunk)
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_throughput(benchmark, profile):
    rng = np.random.default_rng(0)
    num_graphs = 64
    graphs = [attach_degree_features(g) for g in make_imdb_b_like(num_graphs, rng)]
    model = _build_model(profile["hidden"], seed=1)
    model.train()

    def experiment():
        rows = {}
        for batch_size in BATCH_SIZES:
            # Warm-up outside the timed region.
            _loop_step(model, graphs[:batch_size])
            _batched_step(model, graphs[:batch_size])
            loop_s = _time_steps(_loop_step, model, graphs, batch_size, repeats=2)
            batched_s = _time_steps(
                _batched_step, model, graphs, batch_size, repeats=2
            )
            rows[f"B={batch_size}"] = {
                "loop_graphs_per_s": round(num_graphs / loop_s, 1),
                "batched_graphs_per_s": round(num_graphs / batched_s, 1),
                "speedup": round(loop_s / batched_s, 2),
            }
        return rows

    rows = run_once(benchmark, experiment)
    persist_rows("batched_throughput", rows)
    for name, row in rows.items():
        print(name, row)
    # The whole point of the batched path: ≥ 2x throughput at B = 32.
    assert rows["B=32"]["speedup"] >= 2.0
    # Larger batches must not be slower than B = 1 batching.
    assert (
        rows["B=32"]["batched_graphs_per_s"] >= rows["B=1"]["batched_graphs_per_s"]
    )
