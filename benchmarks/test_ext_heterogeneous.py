"""Extension benchmark: HAP on heterogeneous networks.

The paper's conclusion proposes extending HAP to heterogeneous
networks; this bench quantifies the extension on the two-relation
social dataset where the label is the overlap between relations.
Compared rows: heterogeneous HAP (shared MOA assignment, per-relation
coarsened adjacency) vs a relation-blind HAP on the merged adjacency
vs a relation-blind flat sum-pool.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.data import train_val_test_split
from repro.evaluation.harness import format_table
from repro.graph import Graph
from repro.hetero import (
    HeteroGraphClassifier,
    HeteroHAPEmbedder,
    make_hetero_social_like,
)
from repro.models import zoo
from repro.training import TrainConfig, classification_accuracy, fit


def test_extension_heterogeneous_networks(benchmark, profile):
    def experiment():
        data_rng = np.random.default_rng(0)
        graphs = make_hetero_social_like(profile["num_graphs"], data_rng)
        train, val, test = train_val_test_split(graphs, data_rng)
        relations = graphs[0].relations
        rows: dict[str, dict[str, float]] = {}

        # Heterogeneous HAP.
        rng = np.random.default_rng(1)
        embedder = HeteroHAPEmbedder(relations, 2, profile["hidden"], [4, 1], rng)
        model = HeteroGraphClassifier(embedder, 2, rng)
        fit(model, train, rng, TrainConfig(epochs=profile["epochs"], lr=0.01))
        rows["Hetero-HAP"] = {
            "accuracy": sum(model.predict(g) == g.label for g in test) / len(test)
        }

        # Relation-blind baselines on the merged adjacency.
        def merge(hg):
            return Graph(hg.merged_adjacency(), features=hg.features, label=hg.label)

        homo_train = [merge(g) for g in train]
        homo_test = [merge(g) for g in test]
        for method in ("HAP", "SumPool"):
            rng = np.random.default_rng(1)
            homo = zoo.make_classifier(
                method, 2, 2, rng, hidden=profile["hidden"], cluster_sizes=(4, 1)
            )
            fit(homo, homo_train, rng, TrainConfig(epochs=profile["epochs"], lr=0.01))
            rows[f"merged-{method}"] = {
                "accuracy": classification_accuracy(homo, homo_test)
            }
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(rows, ["accuracy"], "Extension: heterogeneous networks"))
    benchmark.extra_info["rows"] = rows
    persist_rows("ext_heterogeneous", rows)
    assert rows["Hetero-HAP"]["accuracy"] >= 0.5
