"""Table 2: statistics of datasets.

Regenerates the dataset-statistics table for every synthetic substitute
(graph counts, max/avg node counts, class counts) so EXPERIMENTS.md can
compare them against the paper's originals.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.data import dataset_statistics
from repro.data.datasets import DATASET_BUILDERS


def test_table2_dataset_statistics(benchmark, profile):
    def experiment():
        rows = []
        for name, (builder, _, _) in DATASET_BUILDERS.items():
            rng = np.random.default_rng(0)
            graphs = builder(profile["num_graphs"], rng)
            rows.append(dataset_statistics(name, graphs))
        return rows

    rows = run_once(benchmark, experiment)
    print("\nTable 2: statistics of datasets (synthetic substitutes)")
    print(f"{'Dataset':<10} {'#Graphs':>8} {'Max.V':>7} {'Avg.V':>7} {'#Classes':>9}")
    for row in rows:
        classes = row["num_classes"] if row["num_classes"] is not None else "-"
        print(
            f"{row['dataset']:<10} {row['num_graphs']:>8} {row['max_nodes']:>7} "
            f"{row['avg_nodes']:>7.1f} {classes:>9}"
        )
    benchmark.extra_info["rows"] = rows
    persist_rows("table2_dataset_stats", rows)
    assert len(rows) == len(DATASET_BUILDERS)
