"""Parallel cross-validation speedup vs the serial reference.

Runs one small cross-validation serially and through the
:mod:`repro.parallel` worker pool, asserting the engine's contract
(identical accuracies) and recording wall-clock speedup, parallel
efficiency and the dataset-cache hit pattern.  The regression *gate*
for these numbers is ``tools/bench_gate.py`` against
``results/bench_baseline.json``; this benchmark records the richer
per-run statistics.

Speedup depends on core count — on a single-core machine the spawn
overhead makes the parallel run *slower*, which is expected and why
the assertion here is on determinism, not on speedup (see
docs/parallelism.md).  ``cpu_count`` travels with the persisted rows
so readers can interpret the timings.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import persist_rows, run_once
from repro.data.cache import clear_memory_cache
from repro.evaluation.crossval import cross_validate_classification

pytestmark = pytest.mark.bench

METHOD, DATASET = "SumPool", "IMDB-B"
WORKERS = (1, 2, 4)


def test_parallel_crossval_speedup(benchmark, profile, tmp_path):
    cv_kwargs = dict(
        folds=4,
        seed=0,
        num_graphs=max(40, profile["num_graphs"] // 2),
        epochs=max(4, profile["epochs"] // 3),
        hidden=profile["hidden"],
        cache_dir=tmp_path / "cache",
    )

    def experiment():
        clear_memory_cache()
        rows: dict[str, dict] = {}
        reference = None
        for n_workers in WORKERS:
            start = time.perf_counter()
            result = cross_validate_classification(
                METHOD, DATASET, n_workers=n_workers, **cv_kwargs
            )
            wall_s = time.perf_counter() - start
            if reference is None:
                reference = result.fold_accuracies
                serial_s = wall_s
            # the engine's contract: scheduling never changes results
            assert result.fold_accuracies == reference, n_workers
            run = result.pool_run
            rows[f"workers_{n_workers}"] = {
                "wall_s": round(wall_s, 4),
                "busy_s": round(run.busy_time_s, 4),
                "efficiency": round(run.efficiency, 4),
                "speedup_vs_serial": round(serial_s / wall_s, 4),
                "mean_accuracy": round(result.mean, 4),
            }
        rows["environment"] = {
            "cpu_count": os.cpu_count(),
            "method": METHOD,
            "dataset": DATASET,
            **{
                k: v for k, v in cv_kwargs.items()
                if isinstance(v, (int, float, str))
            },
        }
        return rows

    rows = run_once(benchmark, experiment)
    persist_rows("parallel_speedup", rows)
    for name, row in rows.items():
        print(name, row)
