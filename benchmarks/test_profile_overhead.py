"""Disabled-mode overhead of the op-level profiling instrumentation.

Every autograd op now runs through a shim that checks a module-global
hook (``repro.tensor.ops._PROFILE_HOOK``).  The acceptance bar for the
observability PR is that this costs the *disabled* engine < 3% of a
training step versus the uninstrumented PR 1 baseline.

The uninstrumented baseline no longer exists in this tree, so the
overhead is reconstructed from its parts: microbenchmark one op's
wrapped form against its raw ``__wrapped__`` implementation to get the
per-call shim cost, count how many op calls one training step actually
makes (with the profiler on), and compare ``calls x per-call cost``
against the measured step time with profiling off.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import persist_rows, run_once
from repro.core import build_hap_embedder
from repro.data import attach_degree_features, make_imdb_b_like
from repro.models.classifier import GraphClassifier
from repro.observe import profile_ops
from repro.tensor import Tensor
from repro.tensor import ops as _ops

MAX_DISABLED_OVERHEAD = 0.03


def _build_model(hidden: int, seed: int) -> GraphClassifier:
    embedder = build_hap_embedder(16, hidden, [6, 2], np.random.default_rng(seed))
    return GraphClassifier(embedder, 2, np.random.default_rng(seed + 1))


def _train_step(model, chunk):
    model.zero_grad()
    model.batch_loss(chunk).backward()


def _per_call_shim_cost(loops: int = 20000) -> float:
    """Seconds the disabled-mode shim adds to one op call.

    Times ``ops.add`` (wrapped) against ``ops.add.__wrapped__`` (raw) on
    tiny tensors so the shim is a visible fraction of the call; best of
    three to shed scheduler noise.
    """
    a = Tensor(np.ones(4), requires_grad=True)
    b = Tensor(np.ones(4))

    def best_of(func, repeats: int = 3) -> float:
        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(loops):
                func(a, b)
            best = min(best, time.perf_counter() - start)
        return best

    wrapped_s = best_of(_ops.add)
    raw_s = best_of(_ops.add.__wrapped__)
    return max(wrapped_s - raw_s, 0.0) / loops


def test_profile_overhead_disabled(benchmark, profile):
    rng = np.random.default_rng(0)
    graphs = [attach_degree_features(g) for g in make_imdb_b_like(32, rng)]
    model = _build_model(profile["hidden"], seed=1)
    model.train()

    def experiment():
        # Op calls per step (forward only: backward closures are NOT
        # wrapped when the profiler is off, so they carry no shim).
        with profile_ops() as prof:
            _train_step(model, graphs)
        ops_per_step = prof.total_forward_calls()

        # Measured step time with profiling disabled (the normal mode).
        _train_step(model, graphs)  # warm-up
        step_s = np.inf
        for _ in range(5):
            start = time.perf_counter()
            _train_step(model, graphs)
            step_s = min(step_s, time.perf_counter() - start)

        per_call_s = _per_call_shim_cost()
        shim_s = ops_per_step * per_call_s
        return {
            "disabled_overhead": {
                "ops_per_step": ops_per_step,
                "per_call_shim_us": round(per_call_s * 1e6, 4),
                "step_s": round(step_s, 6),
                "estimated_shim_s": round(shim_s, 6),
                "estimated_fraction": round(shim_s / step_s, 6),
            }
        }

    rows = run_once(benchmark, experiment)
    persist_rows("profile_overhead", rows)
    row = rows["disabled_overhead"]
    print("disabled_overhead", row)
    # The shim must stay invisible when profiling is off.
    assert row["estimated_fraction"] < MAX_DISABLED_OVERHEAD
