"""Fused hot-path training step vs the pre-fusion execution path.

Times one warm HAP training step (forward + backward on the bench-gate
sparse workload, 2000 nodes) through the current fused path — fused
``masked_softmax_mean`` / ``matmul_tn`` / ``coarsen_chain`` /
``sym_normalize`` kernels, scipy-backed ``spmm``, gradient buffer pool
— and through an in-process emulation of the pre-fusion path: the
fusion sites monkeypatched back to their unfused op compositions, CSR
scipy handles disabled (forcing the ``np.add.at`` scatter reference
``spmm`` ran before), and no buffer pool.  Asserts the fused step is at
least 1.3x faster (the fusion PR's acceptance bar; measured ~5x) and
that both paths produce the same loss to 1e-6.

The regression *gate* for the fused step time is ``tools/bench_gate.py``
(``step_s`` / ``sparse_step_s`` floors in ``results/bench_baseline.json``,
ratcheted via ``--update-baseline``); this benchmark records the richer
fused-vs-unfused comparison.  See docs/performance.md.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.core.coarsen as coarsen_mod
import repro.core.moa as moa_mod
import repro.gnn.layers as layers_mod
from benchmarks.conftest import persist_rows, run_once
from repro.core import build_hap_embedder
from repro.graph import random_sparse_csr
from repro.tensor import (
    BufferPool,
    CSRMatrix,
    Tensor,
    bmm,
    buffer_pool,
    masked_softmax,
    softmax,
    spmm,
    transpose,
)

pytestmark = pytest.mark.bench

NODES, AVG_DEGREE, FEATURES = 2000, 8, 8
SPEEDUP_FLOOR = 1.3
REPEATS = 5


# ---------------------------------------------------------------------------
# The pre-fusion op compositions (what the model code ran before the
# fused kernels landed) — same signatures as their fused replacements.

def _unfused_masked_softmax_mean(a, mask=None, axis=-2, mean_axis=-1):
    if mask is None:
        return softmax(a, axis=axis).mean(axis=mean_axis)
    return masked_softmax(a, mask, axis=axis).mean(axis=mean_axis)


def _unfused_matmul_tn(a, b):
    if a.ndim == 2:
        return a.T @ b
    return bmm(transpose(a, (0, 2, 1)), b)


def _unfused_coarsen_chain(assignment, adjacency):
    if isinstance(adjacency, CSRMatrix):
        return assignment.T @ spmm(adjacency, assignment)
    if adjacency.ndim == 2:
        return assignment.T @ (adjacency @ assignment)
    assignment_t = transpose(assignment, (0, 2, 1))
    return bmm(bmm(assignment_t, adjacency), assignment)


def _unfused_sym_normalize(adjacency, eps=1e-8):
    n = adjacency.shape[-1]
    a_tilde = adjacency + Tensor(np.eye(n))
    inv_sqrt = (a_tilde.sum(axis=-1) + eps) ** -0.5
    if adjacency.ndim == 2:
        return a_tilde * inv_sqrt.reshape(n, 1) * inv_sqrt.reshape(1, n)
    batch = adjacency.shape[0]
    return (
        a_tilde
        * inv_sqrt.reshape(batch, n, 1)
        * inv_sqrt.reshape(batch, 1, n)
    )


def _emulate_pre_fusion(monkeypatch):
    """Swap the fusion sites back to unfused compositions, scipy off."""
    monkeypatch.setattr(moa_mod, "masked_softmax_mean", _unfused_masked_softmax_mean)
    monkeypatch.setattr(moa_mod, "matmul_tn", _unfused_matmul_tn)
    monkeypatch.setattr(coarsen_mod, "coarsen_chain", _unfused_coarsen_chain)
    monkeypatch.setattr(coarsen_mod, "matmul_tn", _unfused_matmul_tn)
    monkeypatch.setattr(layers_mod, "sym_normalize", _unfused_sym_normalize)
    # pre-fusion spmm scattered with np.add.at; returning None from the
    # scipy-handle accessors routes it back onto that reference path
    monkeypatch.setattr(CSRMatrix, "scipy_csr", lambda self: None)
    monkeypatch.setattr(CSRMatrix, "scipy_csr_t", lambda self: None)


def _build_step(pool):
    """A warm bench-gate-shaped sparse training step closure."""
    embedder = build_hap_embedder(FEATURES, 16, [16, 4], np.random.default_rng(0))
    embedder.eval()
    csr = random_sparse_csr(NODES, AVG_DEGREE, np.random.default_rng(1))
    features = np.random.default_rng(2).normal(size=(NODES, FEATURES))

    def step() -> float:
        import contextlib

        ctx = buffer_pool(pool) if pool is not None else contextlib.nullcontext()
        with ctx:
            embedder.zero_grad()
            levels = embedder.embed_levels(csr, Tensor(features))
            total = levels[0].sum()
            for level in levels[1:]:
                total = total + level.sum()
            total.backward()
            return float(total.data)

    return step


def _best_of(step, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        step()
        best = min(best, time.perf_counter() - start)
    return best


def test_fused_step_speedup(benchmark, monkeypatch):
    def experiment():
        fused_step = _build_step(BufferPool())
        fused_loss = fused_step()  # warm-up primes the pool
        fused_s = _best_of(fused_step)

        with monkeypatch.context() as patched:
            _emulate_pre_fusion(patched)
            unfused_step = _build_step(None)
            unfused_loss = unfused_step()
            unfused_s = _best_of(unfused_step, repeats=3)

        np.testing.assert_allclose(fused_loss, unfused_loss, atol=1e-6, rtol=1e-9)
        speedup = unfused_s / fused_s
        assert speedup >= SPEEDUP_FLOOR, (
            f"fused step only {speedup:.2f}x vs pre-fusion path "
            f"({fused_s * 1e3:.1f}ms vs {unfused_s * 1e3:.1f}ms), "
            f"floor is {SPEEDUP_FLOOR}x"
        )
        return {
            "fused_vs_unfused": {
                "unfused_step_s": round(unfused_s, 6),
                "fused_step_s": round(fused_s, 6),
                "speedup": round(speedup, 4),
                "floor": SPEEDUP_FLOOR,
            },
            "workload": {
                "nodes": NODES,
                "avg_degree": AVG_DEGREE,
                "features": FEATURES,
                "repeats": REPEATS,
            },
        }

    rows = run_once(benchmark, experiment)
    persist_rows("fused_speedup", rows)
    for name, row in rows.items():
        print(name, row)
