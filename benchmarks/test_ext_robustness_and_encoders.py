"""Extension benchmarks: perturbation robustness and encoder swaps.

1. ``test_extension_robustness`` — accuracy of trained classifiers as a
   growing fraction of test-graph edges is dropped.  The paper argues
   HAP's global content makes representations less brittle than Top-K
   node selection; this bench quantifies the decay curves.
2. ``test_extension_encoder_swap`` — the paper claims any mainstream
   GNN fits the HAP framework (Sec. 4.3): HAP trained with GCN, GAT,
   GIN and GraphSAGE node & cluster embedding stages.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.data.perturb import drop_edges
from repro.evaluation.harness import format_table, run_classification
from repro.training import classification_accuracy

DROP_FRACTIONS = [0.0, 0.1, 0.25]


def test_extension_robustness(benchmark, profile):
    def experiment():
        rows: dict[str, dict[str, float]] = {}
        for method in ("HAP", "gPool", "SumPool"):
            result = run_classification(
                method,
                "PROTEINS",
                seed=0,
                num_graphs=profile["num_graphs"],
                epochs=profile["epochs"],
                hidden=profile["hidden"],
            )
            rows[method] = {}
            for fraction in DROP_FRACTIONS:
                rng = np.random.default_rng(7)
                perturbed = [
                    drop_edges(g, fraction, rng) for g in result.test_graphs
                ]
                rows[method][f"drop={fraction}"] = classification_accuracy(
                    result.model, perturbed
                )
        return rows

    rows = run_once(benchmark, experiment)
    columns = [f"drop={f}" for f in DROP_FRACTIONS]
    print()
    print(format_table(rows, columns, "Extension: edge-drop robustness (PROTEINS)"))
    benchmark.extra_info["rows"] = rows
    persist_rows("ext_robustness", rows)
    for values in rows.values():
        assert all(0.0 <= v <= 1.0 for v in values.values())


def test_extension_encoder_swap(benchmark, profile):
    def experiment():
        rows: dict[str, dict[str, float]] = {}
        for conv in ("gcn", "gat", "gin", "sage"):
            rows[f"HAP-{conv.upper()}"] = {
                "MUTAG": run_classification(
                    "HAP",
                    "MUTAG",
                    seed=0,
                    num_graphs=profile["num_graphs"],
                    epochs=profile["epochs_hard"],
                    hidden=profile["hidden"],
                    conv=conv,
                ).accuracy
            }
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(rows, ["MUTAG"], "Extension: HAP with different GNN encoders"))
    benchmark.extra_info["rows"] = rows
    persist_rows("ext_encoder_swap", rows)
    assert len(rows) == 4
