"""Figure 5: graph similarity accuracy on AIDS and LINUX.

Conventional approximate-GED baselines (Beam1, Beam80, Hungarian, VJ)
are scored by the sign of their relative GED on exact-GED-labelled
triplets; the learned models (SimGNN, GMN, their HAP-pooled variants
and HAP itself) are trained and scored on the same split.  Paper shape:
HAP tops both datasets; SimGNN trails because absolute-similarity
training transfers poorly to relative judgements.
"""

from conftest import persist_rows, run_once
from repro.evaluation.harness import (
    format_table,
    ged_triplet_accuracy,
    make_similarity_task,
    run_similarity,
    run_simgnn_similarity,
)
from repro.ged import beam_ged, hungarian_ged, vj_ged

DATASETS = ["AIDS", "LINUX"]
LEARNED = ["GMN", "GMN-HAP", "HAP"]


def test_fig5_graph_similarity(benchmark, profile):
    def experiment():
        rows: dict[str, dict[str, float]] = {}
        for dataset in DATASETS:
            _, test, _, _ = make_similarity_task(
                dataset,
                seed=0,
                pool_size=profile["sim_pool"],
                num_triplets=profile["sim_triplets"],
            )
            ged_rows = {
                "Beam1": lambda a, b: beam_ged(a, b, 1),
                "Beam80": lambda a, b: beam_ged(a, b, 80),
                "Hungarian": hungarian_ged,
                "VJ": vj_ged,
            }
            for name, algorithm in ged_rows.items():
                rows.setdefault(name, {})[dataset] = ged_triplet_accuracy(
                    algorithm, test
                )
            for variant, use_hap in [("SimGNN", False), ("SimGNN-HAP", True)]:
                rows.setdefault(variant, {})[dataset] = run_simgnn_similarity(
                    dataset,
                    seed=0,
                    pool_size=profile["sim_pool"],
                    num_triplets=profile["sim_triplets"],
                    epochs=profile["sim_epochs"],
                    hidden=profile["hidden"],
                    use_hap_pooling=use_hap,
                )
            for method in LEARNED:
                rows.setdefault(method, {})[dataset] = run_similarity(
                    method,
                    dataset,
                    seed=0,
                    pool_size=profile["sim_pool"],
                    num_triplets=profile["sim_triplets"],
                    epochs=profile["sim_epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=(4, 1),
                )
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(rows, DATASETS, "Fig. 5: graph similarity accuracy"))
    benchmark.extra_info["rows"] = rows
    persist_rows("fig5_graph_similarity", rows)
    for values in rows.values():
        assert all(0.0 <= v <= 1.0 for v in values.values())
