"""Online-serving throughput: micro-batched vs one-request-at-a-time.

Drives the closed-loop load generator (docs/serving.md) against two
:class:`repro.serve.InferenceService` instances over the same trained
HAP classifier — ``max_batch_size=1`` (the serial baseline: every
request pays its own forward) and ``max_batch_size=16`` (requests
coalesce into padded batches).  The acceptance bar for this
reproduction is micro-batched throughput *strictly above* serial, with
request latency percentiles and the embed-cache hit rate recorded
alongside.

The same measurement gates CI through ``tools/bench_gate.py``
(``serve_p50_s`` / ``serve_p99_s`` timings plus the ``serving`` report
section compared against ``results/bench_baseline.json``).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from benchmarks.conftest import persist_rows, run_once

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import bench_gate  # noqa: E402


@pytest.mark.bench
def test_serve_throughput(benchmark):
    serving = run_once(benchmark, bench_gate.measure_serving)

    serial = serving["serial"]
    batched = serving["batched"]
    embed = serving["embed"]
    print(
        f"\nserial:        {serial['throughput_rps']:8.0f} req/s  "
        f"p50 {serial['p50_s'] * 1e3:6.2f}ms  p99 {serial['p99_s'] * 1e3:6.2f}ms"
    )
    print(
        f"micro-batched: {batched['throughput_rps']:8.0f} req/s  "
        f"p50 {batched['p50_s'] * 1e3:6.2f}ms  p99 {batched['p99_s'] * 1e3:6.2f}ms"
        f"  (mean batch {batched['mean_batch_size']:.1f}, "
        f"{serving['batching_speedup']:.2f}x)"
    )
    print(
        f"embed workload: {embed['throughput_rps']:8.0f} req/s, "
        f"cache hit rate {serving['cache_hit_rate']:.0%}"
    )
    persist_rows(
        "serve_throughput",
        {
            "serial_throughput_rps": serial["throughput_rps"],
            "batched_throughput_rps": batched["throughput_rps"],
            "batching_speedup": serving["batching_speedup"],
            "serve_p50_s": batched["p50_s"],
            "serve_p99_s": batched["p99_s"],
            "mean_batch_size": batched["mean_batch_size"],
            "cache_hit_rate": serving["cache_hit_rate"],
        },
    )

    assert serial["errors"] == 0 and batched["errors"] == 0
    # the tentpole claim: request coalescing must strictly beat serving
    # one request at a time on the same model and workload
    assert batched["throughput_rps"] > serial["throughput_rps"]
    assert batched["mean_batch_size"] > 1.0
    assert serving["cache_hit_rate"] > 0.5
