"""Table 4: graph matching accuracy vs graph size.

GMN, GMN-HAP and HAP trained on the VF2-style synthetic matching pairs
at |V| in {20, 30, 40, 50}.  Paper shape: HAP >= GMN-HAP > GMN at every
size, with HAP improving as graphs grow.
"""

from conftest import persist_rows, run_once
from repro.evaluation.harness import format_table, run_matching

SIZES = [20, 30, 40, 50]
METHODS = ["GMN", "GMN-HAP", "HAP"]


def test_table4_graph_matching(benchmark, profile):
    def experiment():
        rows: dict[str, dict[str, float]] = {m: {} for m in METHODS}
        for method in METHODS:
            for size in SIZES:
                accuracy = run_matching(
                    method,
                    num_nodes=size,
                    seed=0,
                    num_pairs=profile["match_pairs"],
                    epochs=profile["match_epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=(6, 1),
                )
                rows[method][f"|V|={size}"] = accuracy
        return rows

    rows = run_once(benchmark, experiment)
    columns = [f"|V|={s}" for s in SIZES]
    print()
    print(format_table(rows, columns, "Table 4: graph matching accuracy"))
    benchmark.extra_info["rows"] = rows
    persist_rows("table4_graph_matching", rows)
    for values in rows.values():
        assert all(0.0 <= v <= 1.0 for v in values.values())
