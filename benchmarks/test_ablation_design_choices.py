"""Design-choice ablations called out in DESIGN.md §4.

Not a paper table — these benches isolate the implementation decisions
of this reproduction:

1. MOA relaxation ψ: permutation-invariant projection (default) vs the
   paper's literal zero-pad/truncate;
2. Gumbel-Softmax soft sampling: on (τ = 0.1, the paper's setting) vs
   off vs a warm τ = 1.0 — also reports the edge density of the sampled
   coarse adjacency;
3. hierarchical similarity loss (Eq. 23 over all K levels) vs the final
   level only.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.core import GraphCoarsening
from repro.evaluation.harness import format_table, run_classification, run_matching
from repro.graph import random_connected
from repro.tensor import Tensor


def test_ablation_moa_relaxation(benchmark, profile):
    def experiment():
        rows = {}
        for name, relaxation in [("MOA-project", "project"), ("MOA-pad", "pad")]:
            rows[name] = {
                "MUTAG": run_classification(
                    "HAP",
                    "MUTAG",
                    seed=0,
                    num_graphs=profile["num_graphs"],
                    epochs=profile["epochs_hard"],
                    hidden=profile["hidden"],
                    relaxation=relaxation,
                ).accuracy,
                "|V|=20": run_matching(
                    "HAP",
                    num_nodes=20,
                    seed=0,
                    num_pairs=profile["match_pairs"],
                    epochs=profile["match_epochs"],
                    hidden=profile["hidden"],
                    relaxation=relaxation,
                ),
            }
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(rows, ["MUTAG", "|V|=20"], "Ablation: MOA relaxation ψ"))
    benchmark.extra_info["rows"] = rows
    persist_rows("ablation_moa_relaxation", rows)


def test_ablation_soft_sampling(benchmark, profile):
    def experiment():
        rows = {}
        for name, kwargs in [
            ("tau=0.1 (paper)", {"soft_sampling": True, "tau": 0.1}),
            ("tau=1.0", {"soft_sampling": True, "tau": 1.0}),
            ("no sampling", {"soft_sampling": False}),
        ]:
            rows[name] = {
                "|V|=20": run_matching(
                    "HAP",
                    num_nodes=20,
                    seed=0,
                    num_pairs=profile["match_pairs"],
                    epochs=profile["match_epochs"],
                    hidden=profile["hidden"],
                    **kwargs,
                )
            }
            # Edge density of the coarsened adjacency under each setting.
            rng = np.random.default_rng(0)
            g = random_connected(20, 0.3, rng)
            module = GraphCoarsening(4, 6, rng, **kwargs)
            module.eval()
            adj, _, _ = module.coarsen(g.adjacency, Tensor(rng.normal(size=(20, 4))))
            strong = (adj.data > adj.data.mean()).mean()
            rows[name]["density"] = float(strong)
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            rows,
            ["|V|=20", "density"],
            "Ablation: Gumbel-Softmax soft sampling (Eq. 19)",
        )
    )
    benchmark.extra_info["rows"] = rows
    persist_rows("ablation_soft_sampling", rows)


def test_ablation_hierarchical_loss(benchmark, profile):
    def experiment():
        rows = {}
        for name, hierarchical in [("all levels (Eq.23)", True), ("final level", False)]:
            rows[name] = {
                f"|V|={size}": run_matching(
                    "HAP",
                    num_nodes=size,
                    seed=0,
                    num_pairs=profile["match_pairs"],
                    epochs=profile["match_epochs"],
                    hidden=profile["hidden"],
                    hierarchical=hierarchical,
                )
                for size in (20, 40)
            }
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            rows, ["|V|=20", "|V|=40"], "Ablation: hierarchical similarity loss"
        )
    )
    benchmark.extra_info["rows"] = rows
    persist_rows("ablation_hierarchical_loss", rows)
