"""Table 7: generalisation on graph matching.

Models are trained on pairs with 20 <= |V| <= 50 and tested, without
retraining, on pairs with |V| = 100 and |V| = 200.  Paper shape: only
HAP transfers almost losslessly (GCont's parameters are
size-independent); GMN degrades on |V| = 200; the ablated coarsenings
fall towards chance.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.data.matching import make_matching_dataset
from repro.evaluation.harness import (
    DEGREE_FEATURE_DIM,
    _pair_with_features,
    format_table,
)
from repro.models import zoo
from repro.training import TrainConfig, fit, matching_accuracy

METHODS = [
    "GMN",
    "GMN-HAP",
    "HAP-MeanPool",
    "HAP-MeanAttPool",
    "HAP-SAGPool",
    "HAP-DiffPool",
    "HAP",
]
TEST_SIZES = [100, 200]


def test_table7_generalization(benchmark, profile):
    def experiment():
        data_rng = np.random.default_rng(0)
        train_pairs = []
        per_size = max(profile["match_pairs"] // 4, 8)
        for size in (20, 30, 40, 50):
            train_pairs.extend(make_matching_dataset(per_size, size, data_rng))
        train_pairs = [_pair_with_features(p) for p in train_pairs]
        test_sets = {
            size: [
                _pair_with_features(p)
                for p in make_matching_dataset(20, size, data_rng)
            ]
            for size in TEST_SIZES
        }
        rows: dict[str, dict[str, float]] = {}
        for method in METHODS:
            rng = np.random.default_rng(1)
            model = zoo.make_matcher(
                method,
                DEGREE_FEATURE_DIM,
                rng,
                hidden=profile["hidden"],
                cluster_sizes=(6, 1),
            )
            fit(
                model,
                train_pairs,
                rng,
                TrainConfig(epochs=profile["match_epochs"], lr=0.01),
            )
            model.calibrate_threshold(train_pairs[-20:])
            rows[method] = {
                f"|V|={size}": matching_accuracy(model, test_sets[size])
                for size in TEST_SIZES
            }
        return rows

    rows = run_once(benchmark, experiment)
    columns = [f"|V|={s}" for s in TEST_SIZES]
    print()
    print(format_table(rows, columns, "Table 7: cross-size generalisation"))
    benchmark.extra_info["rows"] = rows
    persist_rows("table7_generalization", rows)
    for values in rows.values():
        assert all(0.0 <= v <= 1.0 for v in values.values())
