"""Out-of-core memory gate: streamed 50k graphs vs in-memory 10k.

Runs the three subprocess RSS probes from ``tools/bench_gate.py``
(docs/streaming.md): an import-only interpreter baseline, the
in-memory loader at 10k graphs, and one full shuffled epoch over a
sharded 50k-graph corpus — generation included, since bounded writer
memory (chunked per-shard generation) is part of the out-of-core
contract.  The acceptance bars for this reproduction:

- the 5x-larger streamed corpus peaks *below* the in-memory loader's
  RSS (the absolute tentpole claim),
- the streamed epoch's RSS growth over the bare interpreter stays
  under a fixed fraction of the in-memory loader's growth, so the
  claim survives interpreter-baseline drift,
- ``stream_step_s`` — the per-batch cost of serving training data
  through the shard LRU window and prefetcher — is recorded for the
  regression gate.

The same measurement gates CI through ``tools/bench_gate.py`` (the
``streaming`` report section plus the ``stream_step_s`` timing
compared against ``results/bench_baseline.json``).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from benchmarks.conftest import persist_rows, run_once

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import bench_gate  # noqa: E402


@pytest.mark.bench
def test_streaming_memory(benchmark):
    def experiment():
        streaming = bench_gate.measure_streaming_memory()
        streaming["stream_step_s"] = bench_gate._stream_step_time()
        return streaming

    streaming = run_once(benchmark, experiment)
    config = streaming["config"]

    print(
        f"\nbaseline interpreter: {streaming['baseline_rss_mb']:7.1f} MB RSS"
    )
    print(
        f"in-memory {config['inmem_graphs']:>6} graphs: "
        f"{streaming['inmem_rss_mb']:7.1f} MB RSS "
        f"(+{streaming['inmem_delta_mb']:.1f} MB)"
    )
    print(
        f"streamed  {config['stream_graphs']:>6} graphs: "
        f"{streaming['stream_rss_mb']:7.1f} MB RSS "
        f"(+{streaming['stream_delta_mb']:.1f} MB, "
        f"delta ratio {streaming['delta_ratio']:.2f}, "
        f"shard_size {config['shard_size']}, "
        f"window {config['max_cached_shards']})"
    )
    print(f"stream_step: {streaming['stream_step_s'] * 1e3:.2f} ms/batch")

    persist_rows(
        "streaming_memory",
        {
            "baseline_rss_mb": streaming["baseline_rss_mb"],
            "inmem_rss_mb": streaming["inmem_rss_mb"],
            "stream_rss_mb": streaming["stream_rss_mb"],
            "inmem_delta_mb": streaming["inmem_delta_mb"],
            "stream_delta_mb": streaming["stream_delta_mb"],
            "delta_ratio": streaming["delta_ratio"],
            "stream_step_s": round(streaming["stream_step_s"], 5),
            "stream_graphs": config["stream_graphs"],
            "inmem_graphs": config["inmem_graphs"],
            "shard_size": config["shard_size"],
        },
    )

    # the tentpole claim: a corpus 5x the in-memory one streams within
    # strictly less peak memory than loading the smaller one into RAM
    assert bench_gate.streaming_memory_failures(streaming) == []
    assert streaming["stream_rss_mb"] < streaming["inmem_rss_mb"]
