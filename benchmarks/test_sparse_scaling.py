"""Peak memory and step time of the sparse CSR backend vs dense
(docs/sparse.md).

Runs one HAP training step (embed_levels forward + backward) on random
sparse graphs of N ∈ {500, 2000, 5000} nodes (average degree ~8) and
records wall time and tracemalloc peak memory for both backends.  The
dense path allocates Θ(N²) for the normalised adjacency alone — 200 MB
of float64 at N = 5000 per materialised matrix — so the quick profile
runs dense only up to N = 2000 (``REPRO_BENCH_SCALE=full`` adds dense
N = 5000 for the full curve).

The acceptance bars for this reproduction:

- the sparse backend *trains* at N = 5000 (the tentpole requirement),
- its peak memory at N = 5000 stays below the dense path's at N = 2000
  (~O(E) vs Θ(N²): 6.25x more nodes, less memory).
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from benchmarks.conftest import SCALE, persist_rows, run_once
from repro.core import build_hap_embedder
from repro.graph import random_sparse_csr
from repro.tensor import Tensor

SIZES = (500, 2000, 5000)
AVG_DEGREE = 8
FEAT_DIM = 8
HIDDEN = 16


def _build_embedder(seed: int):
    emb = build_hap_embedder(FEAT_DIM, HIDDEN, [16, 4], np.random.default_rng(seed))
    emb.eval()  # deterministic step; noise draws don't affect scaling
    return emb


def _train_step(embedder, adjacency, features: np.ndarray) -> None:
    embedder.zero_grad()
    levels = embedder.embed_levels(adjacency, Tensor(features))
    total = levels[0].sum()
    for level in levels[1:]:
        total = total + level.sum()
    total.backward()


def _measure(embedder, adjacency, features: np.ndarray) -> dict:
    """Wall time and tracemalloc peak of one warm training step."""
    _train_step(embedder, adjacency, features)  # warm-up outside the probe
    tracemalloc.start()
    start = time.perf_counter()
    _train_step(embedder, adjacency, features)
    step_s = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"step_s": round(step_s, 4), "peak_mb": round(peak / 2**20, 2)}


def test_sparse_scaling(benchmark):
    def experiment():
        rows = {}
        for n in SIZES:
            rng = np.random.default_rng(n)
            csr = random_sparse_csr(n, AVG_DEGREE, rng)
            features = rng.normal(size=(n, FEAT_DIM))
            embedder = _build_embedder(seed=1)
            rows[f"sparse_N={n}"] = _measure(embedder, csr, features)
            # The dense reference densifies deliberately; Θ(N²) makes
            # N = 5000 a full-profile-only measurement.
            if n < 5000 or SCALE == "full":
                rows[f"dense_N={n}"] = _measure(
                    _build_embedder(seed=1), csr.to_dense(), features
                )
        return rows

    rows = run_once(benchmark, experiment)
    persist_rows("sparse_scaling", rows)
    for name, row in rows.items():
        print(name, row)

    # Tentpole bar: a 5000-node graph trains on the sparse backend with
    # less peak memory than the dense backend needs for 2000 nodes.
    assert rows["sparse_N=5000"]["peak_mb"] < rows["dense_N=2000"]["peak_mb"]
    # And sparse memory growth is ~O(E), i.e. roughly linear in N: going
    # 500 -> 5000 (10x nodes/edges) must not cost anywhere near the
    # 100x a quadratic path would pay.
    assert (
        rows["sparse_N=5000"]["peak_mb"]
        < 30 * max(rows["sparse_N=500"]["peak_mb"], 0.1)
    )
