"""Figure 4: t-SNE of graph-level representations across poolers.

For HAP, SAGPool, MeanAttPool and DiffPool classifiers trained on
PROTEINS and COLLAB, graph embeddings are projected to 2-D with t-SNE.
The figure's qualitative content ("HAP's classes are clearly separated")
is reported quantitatively as the silhouette score of the projected
points; the coordinates themselves are attached to the benchmark's
extra-info for external plotting.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.evaluation.harness import format_table, run_classification, run_tsne_study

METHODS = ["HAP", "SAGPool", "MeanAttPool", "DiffPool"]
DATASETS = ["PROTEINS", "COLLAB"]


def test_fig4_tsne_of_baseline_representations(benchmark, profile):
    def experiment():
        silhouettes: dict[str, dict[str, float]] = {m: {} for m in METHODS}
        coordinates = {}
        for dataset in DATASETS:
            for method in METHODS:
                result = run_classification(
                    method,
                    dataset,
                    seed=0,
                    num_graphs=profile["num_graphs"],
                    epochs=profile["epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=(6, 1),
                )
                # Project every held-out graph (t-SNE needs enough points,
                # so embed the whole generated dataset's test portion plus
                # a fresh sample).
                rng = np.random.default_rng(1)
                coords, labels, silhouette = run_tsne_study(
                    result.model, result.test_graphs, rng
                )
                silhouettes[method][dataset] = silhouette
                coordinates[(method, dataset)] = (
                    coords.round(2).tolist(),
                    labels.tolist(),
                )
        return silhouettes, coordinates

    silhouettes, coordinates = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            silhouettes,
            DATASETS,
            "Fig. 4: t-SNE separability (silhouette, higher = cleaner clusters)",
        )
    )
    benchmark.extra_info["silhouettes"] = silhouettes
    persist_rows("fig4_tsne_baselines", silhouettes)
    for values in silhouettes.values():
        assert all(-1.0 <= v <= 1.0 for v in values.values())
