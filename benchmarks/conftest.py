"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper at a
CPU-friendly scale.  Set ``REPRO_BENCH_SCALE=full`` for larger datasets
and training budgets (closer to the paper's regime, several times
slower); the default ``quick`` profile finishes each benchmark in
seconds to a few minutes.
"""

from __future__ import annotations

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: per-profile knobs used across benchmarks
PROFILES = {
    "quick": {
        "num_graphs": 100,
        "epochs": 18,
        "epochs_hard": 45,  # datasets with a long optimisation plateau
        "hidden": 16,
        "match_pairs": 100,
        "match_epochs": 20,
        "sim_pool": 14,
        "sim_triplets": 80,
        "sim_epochs": 8,
        "tsne_iterations": 250,
    },
    "full": {
        "num_graphs": 250,
        "epochs": 40,
        "epochs_hard": 120,
        "hidden": 32,
        "match_pairs": 200,
        "match_epochs": 30,
        "sim_pool": 24,
        "sim_triplets": 200,
        "sim_epochs": 20,
        "tsne_iterations": 400,
    },
}


@pytest.fixture(scope="session")
def profile() -> dict:
    if SCALE not in PROFILES:
        raise KeyError(f"unknown REPRO_BENCH_SCALE={SCALE!r}")
    return PROFILES[SCALE]


def run_once(benchmark, func):
    """Run a whole-experiment callable exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, rounds=1, iterations=1)


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


def persist_rows(name: str, rows: dict) -> None:
    """Write a benchmark's rows to results/<name>.json for EXPERIMENTS.md."""
    from repro.evaluation.reports import save_rows

    os.makedirs(RESULTS_DIR, exist_ok=True)
    save_rows(rows, os.path.join(RESULTS_DIR, f"{name}.json"), title=name)
