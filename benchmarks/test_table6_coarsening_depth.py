"""Table 6: effect of the number of graph coarsening modules.

Baseline (HAP-MeanAttPool, i.e. no coarsening module) vs HAP with
K = 1, 2, 3 coarsening modules, on graph matching (four sizes) and
graph similarity learning (AIDS, LINUX).  Paper shape: one module gives
a large jump over the baseline, the second a clear gain, the third only
marginal movement — motivating the paper's default K = 2.
"""

from conftest import persist_rows, run_once
from repro.evaluation.harness import format_table, run_matching, run_similarity

MATCH_SIZES = [20, 30, 40, 50]
SIM_DATASETS = ["AIDS", "LINUX"]

#: K -> coarsening module target sizes
DEPTHS = {1: (6,), 2: (6, 2), 3: (6, 3, 1)}


def test_table6_coarsening_depth(benchmark, profile):
    def experiment():
        rows: dict[str, dict[str, float]] = {}

        def add(model_name, method, cluster_sizes):
            rows[model_name] = {}
            for size in MATCH_SIZES:
                rows[model_name][f"|V|={size}"] = run_matching(
                    method,
                    num_nodes=size,
                    seed=0,
                    num_pairs=profile["match_pairs"],
                    epochs=profile["match_epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=cluster_sizes,
                )
            for dataset in SIM_DATASETS:
                rows[model_name][dataset] = run_similarity(
                    method,
                    dataset,
                    seed=0,
                    pool_size=profile["sim_pool"],
                    num_triplets=profile["sim_triplets"],
                    epochs=profile["sim_epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=cluster_sizes,
                )

        add("baseline", "HAP-MeanAttPool", (6, 1))
        for depth, sizes in DEPTHS.items():
            add(f"Coarsen={depth}", "HAP", sizes)
        return rows

    rows = run_once(benchmark, experiment)
    columns = [f"|V|={s}" for s in MATCH_SIZES] + SIM_DATASETS
    print()
    print(format_table(rows, columns, "Table 6: number of coarsening modules"))
    benchmark.extra_info["rows"] = rows
    persist_rows("table6_coarsening_depth", rows)
    assert set(rows) == {"baseline", "Coarsen=1", "Coarsen=2", "Coarsen=3"}
