"""Extension benchmark: HAP on attributed networks.

Continuous node attributes (2-D coordinates + a noise channel) on k-NN
geometric graphs; class = spatial layout (ring vs two blobs).  Compared
rows: HAP vs multi-head HAP (num_heads=4) vs SumPool vs DiffPool — the
attributed regime named in the paper's future work, plus the multi-head
MOA extension.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.data import ATTRIBUTE_DIM, make_attributed_like, train_val_test_split
from repro.evaluation.harness import format_table
from repro.models import zoo
from repro.training import TrainConfig, classification_accuracy, fit


def test_extension_attributed_networks(benchmark, profile):
    def experiment():
        data_rng = np.random.default_rng(0)
        graphs = make_attributed_like(profile["num_graphs"], data_rng)
        train, val, _ = train_val_test_split(graphs, data_rng)
        test = make_attributed_like(50, np.random.default_rng(991))
        rows: dict[str, dict[str, float]] = {}
        variants = [
            ("HAP", "HAP", {}),
            ("HAP (4 heads)", "HAP", {"num_heads": 4}),
            ("SumPool", "SumPool", {}),
            ("DiffPool", "DiffPool", {}),
        ]
        for name, method, kwargs in variants:
            rng = np.random.default_rng(1)
            model = zoo.make_classifier(
                method,
                ATTRIBUTE_DIM,
                2,
                rng,
                hidden=profile["hidden"],
                cluster_sizes=(4, 1),
                **kwargs,
            )
            fit(model, train, rng, TrainConfig(epochs=profile["epochs"], lr=0.01))
            rows[name] = {"accuracy": classification_accuracy(model, test)}
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(format_table(rows, ["accuracy"], "Extension: attributed networks"))
    benchmark.extra_info["rows"] = rows
    persist_rows("ext_attributed", rows)
    assert rows["HAP"]["accuracy"] >= 0.5
