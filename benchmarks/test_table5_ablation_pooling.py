"""Table 5: ablation — the HAP framework with its coarsening module
replaced by MeanPool / MeanAttPool / SAGPool / DiffPool.

All variants share the hierarchical framework (encoders + hierarchical
prediction); only the coarsening operator changes.  Paper shape: the
original coarsening module wins everywhere; HAP-MeanPool collapses on
the multi-input tasks; HAP-MeanAttPool is the best ablated variant.
"""

from conftest import persist_rows, run_once
from repro.evaluation.harness import (
    format_table,
    run_classification,
    run_matching,
    run_similarity,
)
from repro.models import zoo

CLS_DATASETS = ["IMDB-B", "IMDB-M", "COLLAB", "MUTAG", "PROTEINS", "PTC"]
HARD_DATASETS = {"MUTAG", "PTC"}
MATCH_SIZES = [20, 30, 40, 50]
SIM_DATASETS = ["AIDS", "LINUX"]


def test_table5_ablation(benchmark, profile):
    def experiment():
        rows: dict[str, dict[str, float]] = {m: {} for m in zoo.ABLATION_METHODS}
        for method in zoo.ABLATION_METHODS:
            for dataset in CLS_DATASETS:
                epochs = (
                    profile["epochs_hard"]
                    if dataset in HARD_DATASETS
                    else profile["epochs"]
                )
                rows[method][dataset] = run_classification(
                    method,
                    dataset,
                    seed=0,
                    num_graphs=profile["num_graphs"],
                    epochs=epochs,
                    hidden=profile["hidden"],
                    cluster_sizes=(6, 1),
                ).accuracy
            for size in MATCH_SIZES:
                rows[method][f"|V|={size}"] = run_matching(
                    method,
                    num_nodes=size,
                    seed=0,
                    num_pairs=profile["match_pairs"],
                    epochs=profile["match_epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=(6, 1),
                )
            for dataset in SIM_DATASETS:
                rows[method][dataset] = run_similarity(
                    method,
                    dataset,
                    seed=0,
                    pool_size=profile["sim_pool"],
                    num_triplets=profile["sim_triplets"],
                    epochs=profile["sim_epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=(4, 1),
                )
        return rows

    rows = run_once(benchmark, experiment)
    columns = CLS_DATASETS + [f"|V|={s}" for s in MATCH_SIZES] + SIM_DATASETS
    print()
    print(format_table(rows, columns, "Table 5: coarsening-module ablation"))
    benchmark.extra_info["rows"] = rows
    persist_rows("table5_ablation_pooling", rows)
    for values in rows.values():
        assert len(values) == len(columns)
