"""Figure 6: t-SNE of HAP representations vs coarsening depth.

HAP classifiers with K = 1, 2, 3 coarsening modules trained on PROTEINS
and COLLAB; separability of the graph-level embedding is reported as
the silhouette of the t-SNE projection.  Paper shape: separability
improves from K = 1 to K = 2 and regresses slightly at K = 3.
"""

import numpy as np

from conftest import persist_rows, run_once
from repro.evaluation.harness import format_table, run_classification, run_tsne_study

DATASETS = ["PROTEINS", "COLLAB"]
DEPTHS = {1: (6,), 2: (6, 2), 3: (6, 3, 1)}


def test_fig6_tsne_vs_coarsening_depth(benchmark, profile):
    def experiment():
        silhouettes: dict[str, dict[str, float]] = {}
        for depth, cluster_sizes in DEPTHS.items():
            name = f"Coarsen={depth}"
            silhouettes[name] = {}
            for dataset in DATASETS:
                result = run_classification(
                    "HAP",
                    dataset,
                    seed=0,
                    num_graphs=profile["num_graphs"],
                    epochs=profile["epochs"],
                    hidden=profile["hidden"],
                    cluster_sizes=cluster_sizes,
                )
                rng = np.random.default_rng(1)
                _, _, silhouette = run_tsne_study(
                    result.model, result.test_graphs, rng
                )
                silhouettes[name][dataset] = silhouette
        return silhouettes

    silhouettes = run_once(benchmark, experiment)
    print()
    print(
        format_table(
            silhouettes,
            DATASETS,
            "Fig. 6: t-SNE separability vs number of coarsening modules",
        )
    )
    benchmark.extra_info["silhouettes"] = silhouettes
    persist_rows("fig6_tsne_depth", silhouettes)
    assert set(silhouettes) == {"Coarsen=1", "Coarsen=2", "Coarsen=3"}
